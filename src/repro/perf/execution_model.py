"""Execution model: price a compiled phase from training sets
(paper Sections 2.3 and 3).

Phases are classified as **loosely synchronous**, **pipelined** (fine or
coarse grain, priced with *low-latency* training sets because computation
and communication overlap), **sequentialized** (a degenerate pipeline with
one stage), or **reductions**.

Deliberate simplifications relative to the SPMD simulation (these are the
paper's own estimator simplifications, and the source of the estimated-
vs-measured gaps in Figures 4-7):

* uniform block sizes — boundary-processor irregularity is ignored;
* each phase is priced in isolation — the overlap of adjacent pipelines
  (a backward sweep starting where the forward sweep just finished) is
  not modelled, which *over*-estimates sequentialized phases;
* IF guards contribute their (guessed) probabilities;
* communication costs come from the fitted linear training sets, with
  nearest-processor-count fallback, not from event-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..codegen.comm import (
    BroadcastComm,
    GatherComm,
    ReductionComm,
    ShiftComm,
    StmtPlan,
)
from ..codegen.spmd import CompiledPhase
from .compiler_model import CompilerOptions, FORTRAN_D_PROTOTYPE
from .training import TrainingDatabase

LOOSELY_SYNCHRONOUS = "loosely synchronous"
PIPELINED = "pipelined"
SEQUENTIALIZED = "sequentialized"
REDUCTION = "reduction"


@dataclass
class PhaseEstimate:
    """Estimated cost of one (phase, candidate layout) pair, per phase
    execution, in microseconds."""

    phase_index: int
    exec_class: str
    compute: float = 0.0
    communication: float = 0.0
    pipeline: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.communication + self.pipeline


def _stride_of(buffered: bool) -> str:
    return "nonunit" if buffered else "unit"


def _plan_compute(plan: StmtPlan, nprocs: int) -> float:
    """Estimator compute model: uniform partitioning, no boundary code.

    The divisor is the product of processor counts over the statement's
    variable-partitioned dimensions — the whole machine for the
    prototype's 1-D layouts, a grid-axis product for multi-dimensional
    ones (dimensions the write is replicated over or pinned to one
    position contribute no speedup)."""
    iters = plan.total_iterations() * plan.guard_probability
    divisor = plan.partition_divisor()
    if plan.replicated_write or divisor <= 1:
        local = iters
    else:
        local = iters / divisor
    return local * plan.per_iter_cost


def _pipeline_time(
    plan: StmtPlan,
    db: TrainingDatabase,
    nprocs: int,
    options: CompilerOptions,
) -> Tuple[float, str]:
    """Closed-form pipeline estimate: ``(S + P - 1) * (chunk + t_msg)``.

    Pipelined phases overlap computation and communication, so messages
    are priced with the *low-latency* training sets; a sequentialized
    phase (one stage) blocks on every hand-off and uses high latency.
    """
    pipe = plan.pipeline
    assert pipe is not None
    stages = max(pipe.stages, 1) * max(pipe.rounds, 1)
    iters = plan.total_iterations() * plan.guard_probability
    divisor = max(plan.partition_divisor(), 1)
    chain_procs = pipe.chain_procs or nprocs
    chunk = (iters / divisor / stages) * plan.per_iter_cost
    msg_bytes = pipe.msg_bytes
    if options.coarse_grain_pipelining and stages > 1:
        # Future-work extension: block the pipeline by the factor that
        # minimizes the closed form (powers of two up to the stage count).
        best = None
        b = 1
        while b <= stages:
            t = db.predict(
                "sendrecv", nprocs, msg_bytes * b,
                stride=_stride_of(pipe.buffered), latency="low",
            )
            total = (stages / b + chain_procs - 1) * (chunk * b + t)
            if best is None or total < best[0]:
                best = (total, b)
            b *= 2
        assert best is not None
        t_msg = db.predict(
            "sendrecv", nprocs, msg_bytes * best[1],
            stride=_stride_of(pipe.buffered), latency="low",
        )
        stages_eff = stages / best[1]
        chunk_eff = chunk * best[1]
        return (stages_eff + chain_procs - 1) * (chunk_eff + t_msg), \
            PIPELINED
    if stages == 1:
        t_msg = db.predict(
            "sendrecv", nprocs, msg_bytes,
            stride=_stride_of(pipe.buffered), latency="high",
        )
        # Every processor along the chain computes its block in turn.
        return chain_procs * (chunk + t_msg), SEQUENTIALIZED
    t_msg = db.predict(
        "sendrecv", nprocs, msg_bytes,
        stride=_stride_of(pipe.buffered), latency="low",
    )
    return (stages + chain_procs - 1) * (chunk + t_msg), PIPELINED


def price_phase(
    compiled: CompiledPhase,
    db: TrainingDatabase,
    nprocs: int,
    options: CompilerOptions = FORTRAN_D_PROTOTYPE,
) -> PhaseEstimate:
    """Estimate one phase execution under one candidate layout."""
    estimate = PhaseEstimate(
        phase_index=compiled.phase_index, exec_class=LOOSELY_SYNCHRONOUS
    )
    has_reduction = False

    # Hoisted communication, coalesced across the phase (or not, when the
    # modelled compiler lacks coalescing).
    events = []
    seen = set()
    for plan in compiled.plans:
        for event in plan.comms:
            if options.message_coalescing:
                if event in seen:
                    continue
                seen.add(event)
            events.append((event, plan))

    for event, plan in events:
        if isinstance(event, ShiftComm):
            procs = event.procs or nprocs
            if options.message_vectorization:
                estimate.communication += db.predict(
                    "shift", procs, event.nbytes,
                    stride=_stride_of(event.buffered), latency="high",
                )
            else:
                # Unvectorized: one element-sized message per iteration of
                # the non-partitioned loops.
                count = max(plan.other_iterations(), 1)
                elem = max(event.nbytes // max(plan.other_iterations(), 1), 1)
                estimate.communication += count * db.predict(
                    "shift", procs, elem, stride="unit", latency="high",
                )
        elif isinstance(event, BroadcastComm):
            estimate.communication += db.predict(
                "broadcast", event.procs or nprocs, event.nbytes,
                stride=_stride_of(event.buffered), latency="high",
            )
        elif isinstance(event, GatherComm):
            estimate.communication += db.predict(
                "transpose", event.procs or nprocs, event.local_bytes,
                stride=_stride_of(event.buffered), latency="high",
            )
        elif isinstance(event, ReductionComm):
            has_reduction = True
            estimate.communication += db.predict(
                "reduction", nprocs, event.nbytes, latency="high"
            ) + db.predict(
                "broadcast", nprocs, event.nbytes, latency="high"
            )

    # Compute + pipelines.
    for plan in compiled.plans:
        if plan.pipeline is not None:
            time, klass = _pipeline_time(plan, db, nprocs, options)
            estimate.pipeline += time
            if estimate.exec_class == LOOSELY_SYNCHRONOUS or (
                klass == SEQUENTIALIZED
            ):
                estimate.exec_class = klass
        else:
            estimate.compute += _plan_compute(plan, nprocs)

    if has_reduction and estimate.exec_class == LOOSELY_SYNCHRONOUS:
        estimate.exec_class = REDUCTION
    return estimate
