"""Performance estimation: training sets, compiler/execution models.

The :mod:`repro.perf.bench` subpackage is the repo's own benchmark
harness (``repro bench``): deterministic stage/end-to-end timings,
``BENCH_<label>.json`` baselines, and the regression gate.
"""

from .training import (
    PATTERNS,
    TrainingDatabase,
    TrainingKey,
    TrainingSet,
    cached_training_database,
    generate_training_database,
)
from .compiler_model import (
    FORTRAN_D_PROTOTYPE,
    CompilerOptions,
    model_phase,
)
from .execution_model import (
    LOOSELY_SYNCHRONOUS,
    PIPELINED,
    REDUCTION,
    SEQUENTIALIZED,
    PhaseEstimate,
    price_phase,
)
from .remapping import arrays_needing_remap, remapping_cost
from .estimator import (
    EstimatedCandidate,
    EstimationResult,
    estimate_search_spaces,
)

__all__ = [
    "PATTERNS", "TrainingDatabase", "TrainingKey", "TrainingSet",
    "cached_training_database", "generate_training_database",
    "CompilerOptions", "FORTRAN_D_PROTOTYPE", "model_phase",
    "PhaseEstimate", "price_phase", "LOOSELY_SYNCHRONOUS", "PIPELINED",
    "SEQUENTIALIZED", "REDUCTION",
    "arrays_needing_remap", "remapping_cost",
    "EstimatedCandidate", "EstimationResult", "estimate_search_spaces",
]
