"""Compiler model (paper Section 2.3).

The performance estimator must know *where and what kind of communication
the target compiler will generate* for a candidate layout.  The model is
parameterized with the transformations the target compiler performs; the
paper's experiments simulate a compiler that does message coalescing and
message vectorization but **no** coarse-grain pipelining, loop interchange
or loop distribution — :data:`FORTRAN_D_PROTOTYPE` captures exactly that
configuration.

Communication *placement and classification* is shared with the SPMD code
generator (:mod:`repro.codegen`): the premise of the paper's evaluation is
that the assistant correctly simulates the compiler it targets, so both
sides must agree on what communication happens.  What the estimator does
**not** share is the pricing: it ignores boundary-processor code, assumes
uniform block sizes, and prices pipelines with a closed form (see
:mod:`repro.perf.execution_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.spmd import CompiledPhase, compile_phase
from ..distribution.layouts import DataLayout
from ..frontend.symbols import SymbolTable
from ..machine.params import MachineParams


@dataclass(frozen=True)
class CompilerOptions:
    """Which optimizations the modelled target compiler performs."""

    message_vectorization: bool = True
    message_coalescing: bool = True
    coarse_grain_pipelining: bool = False
    loop_interchange: bool = False  # modelled for completeness; unused

    @property
    def name(self) -> str:
        bits = []
        if self.message_vectorization:
            bits.append("vect")
        if self.message_coalescing:
            bits.append("coal")
        if self.coarse_grain_pipelining:
            bits.append("cgp")
        return "+".join(bits) or "naive"


#: The target-compiler configuration of the paper's experiments.
FORTRAN_D_PROTOTYPE = CompilerOptions()


def model_phase(
    phase,
    layout: DataLayout,
    symbols: SymbolTable,
    params: MachineParams,
) -> CompiledPhase:
    """Run the compiler model on one phase: returns the statement plans
    (communication placement, patterns, pipeline structure)."""
    return compile_phase(phase, layout, symbols, params)
