"""Constraint-propagation presolve for 0-1 models.

Before a model reaches a backend, a cheap propagation pass can often fix
a large share of its variables outright — in the style of the
constraint-network propagation Chen & Kandemir apply to memory-layout
0-1 programs.  Three sound, optimum-preserving rules run to a fixpoint:

* **row-bound propagation** — for every constraint, the min/max
  achievable LHS over free variables; if setting a free variable to one
  of its values makes the row unsatisfiable under every completion, the
  variable is *forced* to the other value (this subsumes singleton rows
  such as the selection model's ``forbid`` constraints);
* **vacuous-row removal** — rows satisfied by every completion of the
  remaining free variables are dropped;
* **objective fixing** — a free variable appearing in no remaining row
  is fixed to its favourable value (ties resolve to 1, matching the
  branch-bound backend's canonical lexicographically-greatest rule).

Only *forced* variables are fixed, so every feasible completion — and in
particular every optimum, including the canonical one — survives; the
presolved solve returns exactly the solution the unpresolved one would.

The reduced model keeps the surviving variables in their original
insertion order, which preserves the branch-bound backend's canonical
tie-breaking semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import (
    MAXIMIZE,
    Constraint,
    Solution,
    SolveStats,
    ZeroOneModel,
)

_EPS = 1e-9


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve_model`: the reduced model plus the map
    back to the original variable space."""

    original: ZeroOneModel
    model: ZeroOneModel  # reduced model over the free variables
    fixed: Dict[str, int]  # variables the presolve proved
    rows_dropped: int = 0
    infeasible: bool = False

    @property
    def solved(self) -> bool:
        """Did presolve fix every variable?"""
        return not self.infeasible and self.model.num_variables == 0

    def expand(self, sub: Solution) -> Solution:
        """Lift a reduced-model solution back to the original model."""
        if not sub.has_incumbent:
            return Solution(
                status=sub.status,
                objective=sub.objective,
                values={},
                stats=sub.stats,
            )
        values = dict(self.fixed)
        values.update(sub.values)
        return Solution(
            status=sub.status,
            objective=self.original.objective_value(values),
            values=values,
            stats=sub.stats,
        )

    def trivial_solution(self) -> Solution:
        """The full solution when presolve fixed everything."""
        assert self.solved
        return Solution(
            status="optimal",
            objective=self.original.objective_value(self.fixed),
            values=dict(self.fixed),
            stats=SolveStats(backend="presolve"),
        )

    def infeasible_solution(self) -> Solution:
        assert self.infeasible
        return Solution(
            status="infeasible",
            objective=float("nan"),
            values={},
            stats=SolveStats(backend="presolve"),
        )


def presolve_model(model: ZeroOneModel) -> PresolveResult:
    """Propagate constraints to fix and prune 0-1 variables.

    Returns a :class:`PresolveResult` whose ``model`` is the reduced
    program over the still-free variables (empty when presolve solved —
    or refuted — the instance outright).
    """
    names = model.variables
    index = {v: i for i, v in enumerate(names)}
    n = len(names)
    FREE = -1
    assign = [FREE] * n

    rows: List[Tuple[List[Tuple[int, float]], float, float, Constraint]] = []
    for con in model.constraints:
        coeffs = [(index[v], c) for v, c in con.coeffs if c != 0.0]
        lo, hi = -float("inf"), float("inf")
        if con.sense == "<=":
            hi = con.rhs
        elif con.sense == ">=":
            lo = con.rhs
        else:
            lo = hi = con.rhs
        rows.append((coeffs, lo, hi, con))

    def fixpoint() -> bool:
        """Row-bound forcing to a fixpoint; False on infeasibility."""
        changed = True
        while changed:
            changed = False
            for coeffs, lo, hi, _con in rows:
                base = 0.0
                min_add = 0.0
                max_add = 0.0
                free_vars: List[Tuple[int, float]] = []
                for v, c in coeffs:
                    a = assign[v]
                    if a == FREE:
                        free_vars.append((v, c))
                        if c > 0:
                            max_add += c
                        else:
                            min_add += c
                    elif a == 1:
                        base += c
                if base + min_add > hi + _EPS or base + max_add < lo - _EPS:
                    return False
                for v, c in free_vars:
                    one_min = base + min_add + (c if c > 0 else 0.0)
                    one_max = base + max_add + (c if c < 0 else 0.0)
                    if one_min > hi + _EPS or one_max < lo - _EPS:
                        assign[v] = 0
                        changed = True
                        continue
                    zero_min = base + min_add - (c if c < 0 else 0.0)
                    zero_max = base + max_add - (c if c > 0 else 0.0)
                    if zero_min > hi + _EPS or zero_max < lo - _EPS:
                        assign[v] = 1
                        changed = True
        return True

    if not fixpoint():
        return PresolveResult(
            original=model,
            model=ZeroOneModel(name=f"{model.name}:presolved",
                               sense=model.sense),
            fixed={},
            infeasible=True,
        )

    # Partition rows into vacuous (satisfied by every completion of the
    # free variables) and surviving; fold fixed variables into the RHS.
    surviving: List[Tuple[Dict[str, float], str, float, str]] = []
    dropped = 0
    for coeffs, lo, hi, con in rows:
        base = 0.0
        min_add = 0.0
        max_add = 0.0
        free_coeffs: Dict[str, float] = {}
        for v, c in coeffs:
            a = assign[v]
            if a == FREE:
                free_coeffs[names[v]] = free_coeffs.get(names[v], 0.0) + c
                if c > 0:
                    max_add += c
                else:
                    min_add += c
            elif a == 1:
                base += c
        if base + min_add >= lo - _EPS and base + max_add <= hi + _EPS:
            dropped += 1  # vacuous under every completion
            continue
        surviving.append(
            (free_coeffs, con.sense, con.rhs - base, con.name)
        )

    # Objective fixing: free variables in no surviving row take their
    # favourable value (1 on ties — the canonical branch-bound choice).
    in_rows = set()
    for free_coeffs, _sense, _rhs, _name in surviving:
        in_rows.update(free_coeffs)
    sign = 1.0 if model.sense == MAXIMIZE else -1.0
    for v in range(n):
        if assign[v] != FREE or names[v] in in_rows:
            continue
        gain = sign * model.objective.get(names[v], 0.0)
        assign[v] = 1 if gain >= 0.0 else 0

    fixed = {names[v]: assign[v] for v in range(n) if assign[v] != FREE}

    reduced = ZeroOneModel(
        name=f"{model.name}:presolved", sense=model.sense
    )
    for v in range(n):
        if assign[v] == FREE:
            reduced.add_var(names[v])
    for free_coeffs, sense, rhs, name in surviving:
        reduced.add_constraint(free_coeffs, sense, rhs, name=name)
    objective = {
        var: coeff
        for var, coeff in model.objective.items()
        if var not in fixed
    }
    reduced.set_objective(objective)
    return PresolveResult(
        original=model,
        model=reduced,
        fixed=fixed,
        rows_dropped=dropped,
    )
