"""From-scratch 0-1 solver: implicit enumeration (Balas-style) with
constraint propagation.

A pure-Python exact solver used to cross-check the HiGHS backend and to
keep the repo self-contained — the additive/implicit-enumeration algorithm
is the classic pre-LP technique for 0-1 programs (Nemhauser & Wolsey,
ch. II.4), which suits the paper's moderate problem sizes (hundreds of
variables).

Strategy, on a depth-first stack:

* **bounding** — with a partial assignment, an optimistic objective bound
  adds every favourable unfixed coefficient; prune when it cannot beat the
  incumbent;
* **feasibility propagation** — for every constraint keep the min/max
  achievable LHS over unfixed variables; a constraint that cannot be
  satisfied prunes the node, and one that forces a variable (e.g. the
  remaining slack of a ``<=`` is smaller than some positive unfixed
  coefficient... ) fixes it immediately;
* **branching** — on the unfixed variable with the largest absolute
  objective coefficient, favourable value first.

Deterministic *and canonical*: among equal-objective optima the solver
returns the assignment that is lexicographically greatest in variable
insertion order.  Subtrees whose bound merely *ties* the incumbent are
therefore still explored (pruning requires a strict bound deficit), and a
tying complete assignment replaces the incumbent exactly when it is
lexicographically greater.  For selection-shaped models (one
exactly-one group per phase, candidate 0 added first) this resolves
equal-cost candidates to the earliest candidate of the earliest phase —
stable under constraint reordering and coefficient jitter, and
independent of which optimum the search happens to reach first.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from .model import MAXIMIZE, MINIMIZE, Solution, SolveStats, ZeroOneModel

_EPS = 1e-9

FREE = -1


class _Problem:
    """Preprocessed arrays for fast propagation."""

    def __init__(self, model: ZeroOneModel):
        self.model = model
        self.n = model.num_variables
        index = model.var_index
        # Objective as maximization internally.
        sign = 1.0 if model.sense == MAXIMIZE else -1.0
        self.obj = [0.0] * self.n
        for var, coeff in model.objective.items():
            self.obj[index(var)] += sign * coeff
        # Constraints as (coeff list, lo, hi) row bounds.
        self.rows: List[Tuple[List[Tuple[int, float]], float, float]] = []
        for con in model.constraints:
            coeffs = [(index(v), c) for v, c in con.coeffs if c != 0.0]
            lo, hi = -float("inf"), float("inf")
            if con.sense == "<=":
                hi = con.rhs
            elif con.sense == ">=":
                lo = con.rhs
            else:
                lo = hi = con.rhs
            self.rows.append((coeffs, lo, hi))
        # Var -> rows it appears in.
        self.var_rows: List[List[int]] = [[] for _ in range(self.n)]
        for r, (coeffs, _, _) in enumerate(self.rows):
            for v, _ in coeffs:
                self.var_rows[v].append(r)
        # Exactly-one groups (sum of unit-coefficient variables == 1):
        # every completion must pick one member, so the optimistic bound
        # may add at most the group's best objective coefficient.  This
        # is what makes selection-shaped problems (one candidate per
        # phase) tractable without an LP relaxation.
        self.choice_groups: List[List[int]] = []
        grouped = [False] * self.n
        for coeffs, lo, hi in self.rows:
            if lo == hi == 1.0 and len(coeffs) >= 2 and all(
                c == 1.0 for _v, c in coeffs
            ) and not any(grouped[v] for v, _c in coeffs):
                members = [v for v, _c in coeffs]
                self.choice_groups.append(members)
                for v in members:
                    grouped[v] = True
        # Branch order: decision variables (exactly-one group members)
        # before dependent variables (e.g. remap-edge indicators, which
        # propagation resolves once the decisions are made); descending
        # |objective coefficient| within each class.
        self.order = sorted(
            range(self.n),
            key=lambda v: (not grouped[v], -abs(self.obj[v]), v),
        )


def _propagate(
    prob: _Problem, assign: List[int], trail: List[int]
) -> bool:
    """Fix forced variables until a fixpoint; False on infeasibility.

    ``trail`` records variables fixed here so the caller can undo them.
    """
    changed = True
    while changed:
        changed = False
        for coeffs, lo, hi in prob.rows:
            base = 0.0
            min_add = 0.0
            max_add = 0.0
            free_vars: List[Tuple[int, float]] = []
            for v, c in coeffs:
                a = assign[v]
                if a == FREE:
                    free_vars.append((v, c))
                    if c > 0:
                        max_add += c
                    else:
                        min_add += c
                elif a == 1:
                    base += c
            if base + min_add > hi + _EPS or base + max_add < lo - _EPS:
                return False
            # Forcing: if flipping one free variable to its bad side breaks
            # the row, it must take the good side.
            for v, c in free_vars:
                # v = 1 infeasible?
                one_min = base + min_add + (c if c > 0 else 0.0)
                one_max = base + max_add + (c if c < 0 else 0.0)
                if one_min > hi + _EPS or one_max < lo - _EPS:
                    assign[v] = 0
                    trail.append(v)
                    changed = True
                    continue
                # v = 0 infeasible?
                zero_min = base + min_add - (c if c < 0 else 0.0)
                zero_max = base + max_add - (c if c > 0 else 0.0)
                if zero_min > hi + _EPS or zero_max < lo - _EPS:
                    assign[v] = 1
                    trail.append(v)
                    changed = True
            if changed:
                break  # recompute rows with the new fixings
    return True


def solve(
    model: ZeroOneModel,
    time_limit: Optional[float] = None,
    node_limit: int = 5_000_000,
    warm_start: Optional[Dict[str, int]] = None,
) -> Solution:
    """Solve ``model`` exactly by implicit enumeration.

    Anytime behavior: on hitting ``time_limit`` or ``node_limit`` the
    best incumbent found so far is returned with status ``time_limit``
    / ``node_limit`` (``unknown`` when no feasible point was reached),
    so deadline-bounded callers always get their best available answer.

    ``warm_start`` optionally seeds the incumbent with a known feasible
    assignment (e.g. the previous optimum along a remap chain), letting
    the bound prune from node one.  Infeasible or partial warm starts
    are silently ignored.  The canonical result is unchanged: pruning
    still requires a strict bound deficit and tying complete assignments
    still replace a lexicographically smaller incumbent, so the search
    returns the same lexicographically-greatest optimum with or without
    the seed.
    """
    prob = _Problem(model)
    n = prob.n
    if n == 0:
        return Solution(
            status="optimal",
            objective=0.0,
            values={},
            stats=SolveStats(backend="branch-bound"),
        )
    if time_limit is not None and time_limit <= 0:
        # Budget already spent before the solve began.
        return Solution(
            status="unknown",
            objective=float("nan"),
            values={},
            stats=SolveStats(backend="branch-bound"),
        )

    start = time.perf_counter()
    best_val = -float("inf")
    best_assign: Optional[List[int]] = None
    if warm_start is not None and all(
        warm_start.get(v) in (0, 1) for v in model.variables
    ):
        seed_values = {v: int(warm_start[v]) for v in model.variables}
        if model.is_feasible(seed_values):
            best_assign = [seed_values[v] for v in model.variables]
            best_val = sum(
                prob.obj[i] for i in range(n) if best_assign[i] == 1
            )
    assign = [FREE] * n
    nodes = 0

    in_group = [False] * n
    for members in prob.choice_groups:
        for v in members:
            in_group[v] = True

    def optimistic(cur: float) -> float:
        """Upper bound on any completion of the partial assignment.

        Free variables outside exactly-one groups contribute their
        positive coefficients; each exactly-one group without a chosen
        member must contribute exactly one member, so it adds at most the
        best coefficient among its still-free members."""
        bound = cur
        for v in range(n):
            if assign[v] == FREE and not in_group[v] and prob.obj[v] > 0:
                bound += prob.obj[v]
        for members in prob.choice_groups:
            chosen = False
            best = None
            for v in members:
                a = assign[v]
                if a == 1:
                    chosen = True
                    break
                if a == FREE:
                    coeff = prob.obj[v]
                    if best is None or coeff > best:
                        best = coeff
            if not chosen and best is not None:
                bound += best
        return bound

    def current_value() -> float:
        return sum(prob.obj[v] for v in range(n) if assign[v] == 1)

    # Depth-first search over prob.order with an explicit stack.  Stack
    # entries: ("enter",) explores the current partial assignment;
    # ("assign", var, value) sets a branch value; ("unassign", var) and
    # ("untrail", trail) undo on the way back up.
    stack: List[tuple] = [("enter",)]
    limit_reached: Optional[str] = None
    while stack:
        action = stack.pop()
        kind = action[0]
        if kind == "unassign":
            assign[action[1]] = FREE
            continue
        if kind == "untrail":
            for v in action[1]:
                assign[v] = FREE
            continue
        if kind == "assign":
            assign[action[1]] = action[2]
            stack.append(("enter",))
            continue
        # kind == "enter": evaluate the current node.
        nodes += 1
        if nodes > node_limit:
            limit_reached = "node_limit"
            break
        if (
            time_limit is not None
            and nodes % 256 == 0
            and time.perf_counter() - start > time_limit
        ):
            limit_reached = "time_limit"
            break
        trail: List[int] = []
        if not _propagate(prob, assign, trail):
            for v in trail:
                assign[v] = FREE
            continue
        cur = current_value()
        # Prune only on a strict bound deficit: subtrees that merely TIE
        # the incumbent may hold the canonical (lexicographically
        # greatest) optimum and must still be explored.
        if optimistic(cur) < best_val - _EPS:
            for v in trail:
                assign[v] = FREE
            continue
        branch_var = None
        for v in prob.order:
            if assign[v] == FREE:
                branch_var = v
                break
        if branch_var is None:
            if cur > best_val + _EPS or (
                cur > best_val - _EPS
                and best_assign is not None
                and assign > best_assign
            ):
                best_val = max(best_val, cur)
                best_assign = assign.copy()
            for v in trail:
                assign[v] = FREE
            continue
        first = 1 if prob.obj[branch_var] > 0 else 0
        # Pushed in reverse so the favourable value is explored first.
        stack.append(("untrail", trail))
        stack.append(("unassign", branch_var))
        stack.append(("assign", branch_var, 1 - first))
        stack.append(("assign", branch_var, first))

    status = "optimal"
    if limit_reached is not None:
        # The search was cut short: the incumbent (if any) is feasible
        # but unproven; with no incumbent the model's status is unknown,
        # NOT infeasible — infeasibility requires an exhausted search.
        status = limit_reached if best_assign is not None else "unknown"
    elapsed = time.perf_counter() - start
    stats = SolveStats(backend="branch-bound", wall_time=elapsed, nodes=nodes)

    if best_assign is None:
        return Solution(
            status="infeasible" if limit_reached is None else "unknown",
            objective=float("nan"),
            values={},
            stats=stats,
        )
    values = {
        var: best_assign[model.var_index(var)] for var in model.variables
    }
    return Solution(
        status=status,
        objective=model.objective_value(values),
        values=values,
        stats=stats,
    )
