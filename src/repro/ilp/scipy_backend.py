"""HiGHS backend (via :func:`scipy.optimize.milp`) for 0-1 models.

This is the repo's CPLEX stand-in: an exact branch-and-cut MILP solver.
The translation is mechanical — binary bounds, sparse constraint matrix,
sign-flip for maximization (``milp`` always minimizes).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import MAXIMIZE, ModelError, Solution, SolveStats, ZeroOneModel


def solve(
    model: ZeroOneModel,
    time_limit: Optional[float] = None,
    warm_start: Optional[dict] = None,
) -> Solution:
    """Solve ``model`` to proven optimality with HiGHS.

    ``warm_start`` is accepted for backend-interface uniformity but
    ignored: ``scipy.optimize.milp`` exposes no incumbent-seeding hook.
    """
    n = model.num_variables
    if n == 0:
        return Solution(
            status="optimal",
            objective=0.0,
            values={},
            stats=SolveStats(backend="scipy-highs"),
        )

    if time_limit is not None and time_limit <= 0:
        # Budget already spent before the solve began.
        return Solution(
            status="unknown",
            objective=float("nan"),
            values={},
            stats=SolveStats(backend="scipy-highs"),
        )

    sign = -1.0 if model.sense == MAXIMIZE else 1.0
    c = np.zeros(n)
    for var, coeff in model.objective.items():
        c[model.var_index(var)] = sign * coeff

    rows, cols, data = [], [], []
    lower = np.full(len(model.constraints), -np.inf)
    upper = np.full(len(model.constraints), np.inf)
    for row, con in enumerate(model.constraints):
        for var, coeff in con.coeffs:
            rows.append(row)
            cols.append(model.var_index(var))
            data.append(coeff)
        if con.sense == "<=":
            upper[row] = con.rhs
        elif con.sense == ">=":
            lower[row] = con.rhs
        else:
            lower[row] = upper[row] = con.rhs

    start = time.perf_counter()
    kwargs = {}
    if time_limit is not None:
        kwargs["options"] = {"time_limit": time_limit}
    if model.constraints:
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(model.constraints), n)
        )
        constraints = [LinearConstraint(matrix, lower, upper)]
    else:
        constraints = []
    result = milp(
        c=c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        **kwargs,
    )
    elapsed = time.perf_counter() - start
    stats = SolveStats(
        backend="scipy-highs",
        wall_time=elapsed,
        nodes=int(getattr(result, "mip_node_count", 0) or 0),
    )
    if not result.success:
        # HiGHS status 1 = iteration/time limit; any feasible point it
        # carries is a usable incumbent (anytime behavior).  Everything
        # else without a certificate of infeasibility is "unknown".
        hit_limit = getattr(result, "status", None) == 1
        if hit_limit and getattr(result, "x", None) is not None:
            values = {
                var: int(round(result.x[model.var_index(var)]))
                for var in model.variables
            }
            if model.is_feasible(values):
                return Solution(
                    status="time_limit",
                    objective=model.objective_value(values),
                    values=values,
                    stats=stats,
                )
        status = "unknown" if hit_limit else "infeasible"
        return Solution(
            status=status, objective=float("nan"), values={}, stats=stats
        )
    values = {
        var: int(round(result.x[model.var_index(var)]))
        for var in model.variables
    }
    return Solution(
        status="optimal",
        objective=model.objective_value(values),
        values=values,
        stats=stats,
    )
