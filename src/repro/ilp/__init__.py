"""0-1 integer programming substrate (the repo's CPLEX stand-in)."""

from typing import Optional

from ..obs.tracing import span as _obs_span
from ..resilience.deadline import remaining_budget as _remaining_budget
from ..resilience.faults import fault_point as _fault_point
from . import branch_bound, scipy_backend
from .model import (
    INCUMBENT_STATUSES,
    MAXIMIZE,
    MINIMIZE,
    Constraint,
    ModelError,
    Solution,
    SolveStats,
    ZeroOneModel,
)

BACKENDS = {
    "scipy": scipy_backend.solve,
    "highs": scipy_backend.solve,
    "branch-bound": branch_bound.solve,
}

DEFAULT_BACKEND = "scipy"


def solve(
    model: ZeroOneModel,
    backend: str = DEFAULT_BACKEND,
    time_limit: Optional[float] = None,
) -> Solution:
    """Solve a 0-1 model with the named backend ("scipy" | "branch-bound").

    Any request deadline in scope clamps ``time_limit`` to the budget
    actually remaining, making every solve *anytime*: past the budget
    the backends return their best incumbent (status ``time_limit`` /
    ``node_limit``) or ``unknown``, never block the request.
    """
    try:
        fn = BACKENDS[backend]
    except KeyError:
        raise ModelError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
    _fault_point("ilp.solve")
    budget = _remaining_budget()
    if budget is not None:
        time_limit = budget if time_limit is None else min(time_limit, budget)
    with _obs_span(
        "ilp.solve",
        name=model.name,
        backend=backend,
        variables=model.num_variables,
        constraints=model.num_constraints,
    ) as sp:
        solution = fn(model, time_limit=time_limit)
        sp.set_attr("status", solution.status)
        sp.set_attr("objective", solution.objective)
        sp.set_attr("nodes", solution.stats.nodes)
    return solution


__all__ = [
    "ZeroOneModel",
    "Constraint",
    "Solution",
    "SolveStats",
    "ModelError",
    "INCUMBENT_STATUSES",
    "MINIMIZE",
    "MAXIMIZE",
    "solve",
    "BACKENDS",
    "DEFAULT_BACKEND",
]
