"""0-1 integer programming substrate (the repo's CPLEX stand-in)."""

from typing import Optional

from . import branch_bound, scipy_backend
from .model import (
    MAXIMIZE,
    MINIMIZE,
    Constraint,
    ModelError,
    Solution,
    SolveStats,
    ZeroOneModel,
)

BACKENDS = {
    "scipy": scipy_backend.solve,
    "highs": scipy_backend.solve,
    "branch-bound": branch_bound.solve,
}

DEFAULT_BACKEND = "scipy"


def solve(
    model: ZeroOneModel,
    backend: str = DEFAULT_BACKEND,
    time_limit: Optional[float] = None,
) -> Solution:
    """Solve a 0-1 model with the named backend ("scipy" | "branch-bound")."""
    try:
        fn = BACKENDS[backend]
    except KeyError:
        raise ModelError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
    return fn(model, time_limit=time_limit)


__all__ = [
    "ZeroOneModel",
    "Constraint",
    "Solution",
    "SolveStats",
    "ModelError",
    "MINIMIZE",
    "MAXIMIZE",
    "solve",
    "BACKENDS",
    "DEFAULT_BACKEND",
]
