"""0-1 integer programming substrate (the repo's CPLEX stand-in)."""

from typing import Dict, Optional

from ..obs.tracing import span as _obs_span
from ..resilience.deadline import remaining_budget as _remaining_budget
from ..resilience.faults import fault_point as _fault_point
from . import branch_bound, scipy_backend
from .model import (
    INCUMBENT_STATUSES,
    MAXIMIZE,
    MINIMIZE,
    Constraint,
    ModelError,
    Solution,
    SolveStats,
    ZeroOneModel,
)
from .presolve import PresolveResult, presolve_model

BACKENDS = {
    "scipy": scipy_backend.solve,
    "highs": scipy_backend.solve,
    "branch-bound": branch_bound.solve,
}

DEFAULT_BACKEND = "scipy"


def solve(
    model: ZeroOneModel,
    backend: str = DEFAULT_BACKEND,
    time_limit: Optional[float] = None,
    presolve: bool = False,
    warm_start: Optional[Dict[str, int]] = None,
) -> Solution:
    """Solve a 0-1 model with the named backend ("scipy" | "branch-bound").

    Any request deadline in scope clamps ``time_limit`` to the budget
    actually remaining, making every solve *anytime*: past the budget
    the backends return their best incumbent (status ``time_limit`` /
    ``node_limit``) or ``unknown``, never block the request.

    With ``presolve``, constraint propagation fixes forced variables
    first (see :mod:`repro.ilp.presolve`) and the backend only sees the
    reduced model; the returned solution is expressed over the original
    variables and is identical to the unpresolved one.  ``warm_start``
    seeds the branch-bound backend's incumbent with a known feasible
    assignment (HiGHS exposes no seeding hook, so the scipy backend
    ignores it); the canonical result is unchanged either way.
    """
    try:
        fn = BACKENDS[backend]
    except KeyError:
        raise ModelError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
    _fault_point("ilp.solve")
    budget = _remaining_budget()
    if budget is not None:
        time_limit = budget if time_limit is None else min(time_limit, budget)
    with _obs_span(
        "ilp.solve",
        name=model.name,
        backend=backend,
        variables=model.num_variables,
        constraints=model.num_constraints,
    ) as sp:
        pre: Optional[PresolveResult] = None
        if presolve:
            with _obs_span(
                "ilp.presolve", name=model.name,
                variables=model.num_variables,
            ) as psp:
                pre = presolve_model(model)
                psp.set_attr("fixed", len(pre.fixed))
                psp.set_attr("rows_dropped", pre.rows_dropped)
                psp.set_attr(
                    "free", 0 if pre.infeasible else pre.model.num_variables
                )
        if pre is not None and pre.infeasible:
            solution = pre.infeasible_solution()
        elif pre is not None and pre.solved:
            solution = pre.trivial_solution()
        else:
            target = model if pre is None else pre.model
            sub_warm = warm_start
            if pre is not None and warm_start is not None:
                # Project the seed onto the free variables; a seed that
                # contradicts a proven fixing cannot be feasible.
                if any(
                    warm_start.get(v) not in (None, x)
                    for v, x in pre.fixed.items()
                ):
                    sub_warm = None
                else:
                    sub_warm = {
                        v: warm_start[v]
                        for v in target.variables
                        if v in warm_start
                    }
            solution = fn(
                target, time_limit=time_limit, warm_start=sub_warm
            )
            if pre is not None:
                solution = pre.expand(solution)
        sp.set_attr("status", solution.status)
        sp.set_attr("objective", solution.objective)
        sp.set_attr("nodes", solution.stats.nodes)
    return solution


__all__ = [
    "ZeroOneModel",
    "Constraint",
    "Solution",
    "SolveStats",
    "ModelError",
    "INCUMBENT_STATUSES",
    "MINIMIZE",
    "MAXIMIZE",
    "solve",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "PresolveResult",
    "presolve_model",
]
