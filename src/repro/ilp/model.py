"""Generic 0-1 integer programming model.

The paper solves two NP-complete problems — inter-dimensional alignment
and data-layout selection — by translating them into 0-1 integer programs
and calling CPLEX directly ("builds the required constraint matrices
internally... without creating any intermediate files", Section 3).  This
module is the equivalent in-memory model: named binary variables, sparse
linear constraints, and a linear objective, handed to one of two solver
backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

SENSES = ("<=", ">=", "==")

MINIMIZE = "min"
MAXIMIZE = "max"


class ModelError(Exception):
    """Raised for malformed models (unknown variables, bad senses...)."""


@dataclass(frozen=True)
class Constraint:
    """Sparse linear constraint ``sum(coeffs[v] * v)  sense  rhs``."""

    coeffs: Tuple[Tuple[str, float], ...]
    sense: str
    rhs: float
    name: str = ""


@dataclass
class SolveStats:
    """Backend-reported solve statistics."""

    backend: str = ""
    wall_time: float = 0.0
    nodes: int = 0


#: statuses whose ``values`` hold a feasible (if unproven) assignment
INCUMBENT_STATUSES = ("optimal", "time_limit", "node_limit")


@dataclass
class Solution:
    """The outcome of a 0-1 solve.

    ``status`` is one of:

    - ``optimal``    — proven optimum, ``values`` hold it;
    - ``time_limit`` / ``node_limit`` — the solver hit its budget but
      carries a feasible *incumbent* in ``values`` (anytime behavior);
    - ``infeasible`` — proven infeasible;
    - ``unknown``    — budget exhausted with no incumbent found.
    """

    status: str
    objective: float
    values: Dict[str, int]
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def has_incumbent(self) -> bool:
        """A feasible assignment exists, proven optimal or not."""
        return self.status in INCUMBENT_STATUSES

    def on_vars(self) -> List[str]:
        """Names of variables set to 1."""
        return [v for v, x in self.values.items() if x == 1]


class ZeroOneModel:
    """A 0-1 integer program under construction."""

    def __init__(self, name: str = "", sense: str = MINIMIZE):
        if sense not in (MINIMIZE, MAXIMIZE):
            raise ModelError(f"bad objective sense {sense!r}")
        self.name = name
        self.sense = sense
        self._vars: List[str] = []
        self._index: Dict[str, int] = {}
        self.constraints: List[Constraint] = []
        self.objective: Dict[str, float] = {}

    # -- variables ---------------------------------------------------------

    def add_var(self, name: str) -> str:
        """Register a binary variable; idempotent on repeated names."""
        if name not in self._index:
            self._index[name] = len(self._vars)
            self._vars.append(name)
        return name

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self._vars)

    @property
    def num_variables(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def var_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"unknown variable {name!r}") from None

    # -- constraints & objective --------------------------------------------

    def add_constraint(
        self,
        coeffs: Mapping[str, float] | Iterable[Tuple[str, float]],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        if sense not in SENSES:
            raise ModelError(f"bad constraint sense {sense!r}")
        items = tuple(
            coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        )
        for var, _ in items:
            if var not in self._index:
                raise ModelError(
                    f"constraint {name!r} uses undeclared variable {var!r}"
                )
        constraint = Constraint(
            coeffs=items, sense=sense, rhs=float(rhs), name=name
        )
        self.constraints.append(constraint)
        return constraint

    def set_objective_coeff(self, var: str, coeff: float) -> None:
        if var not in self._index:
            raise ModelError(f"unknown objective variable {var!r}")
        self.objective[var] = self.objective.get(var, 0.0) + float(coeff)

    def set_objective(self, coeffs: Mapping[str, float]) -> None:
        self.objective = {}
        for var, coeff in coeffs.items():
            self.set_objective_coeff(var, coeff)

    # -- evaluation helpers ---------------------------------------------------

    def objective_value(self, values: Mapping[str, int]) -> float:
        return sum(c * values.get(v, 0) for v, c in self.objective.items())

    def is_feasible(self, values: Mapping[str, int]) -> bool:
        """Check a full assignment against every constraint (used by tests
        and to cross-validate solver backends)."""
        for con in self.constraints:
            lhs = sum(c * values.get(v, 0) for v, c in con.coeffs)
            if con.sense == "<=" and lhs > con.rhs + 1e-9:
                return False
            if con.sense == ">=" and lhs < con.rhs - 1e-9:
                return False
            if con.sense == "==" and abs(lhs - con.rhs) > 1e-9:
                return False
        return True

    def summary(self) -> str:
        return (
            f"0-1 model {self.name!r}: {self.num_variables} variables, "
            f"{self.num_constraints} constraints ({self.sense})"
        )
