"""Adi — alternating direction implicit integration kernel.

Re-creation of the ADI kernel used in the paper's evaluation (Section 4):

* 9 phases: one initialization phase plus eight phases inside the
  time-step loop;
* two phases carry a flow dependence along the **first** dimension
  (forward elimination / backward substitution of the i-direction sweep) —
  these become a *fine-grain pipeline* under a row (dim-1) distribution;
* two phases carry a flow dependence along the **second** dimension with
  the j loop outermost — these *sequentialize* under a column (dim-2)
  distribution (always the worst choice in the paper);
* no inter-dimensional alignment conflicts;
* the remaining phases are fully parallel, so a dynamic layout that
  transposes between the i-sweep half and the j-sweep half makes every
  phase communication-free at the price of two remappings per time step.
"""

from __future__ import annotations

_DECL = {"double": "double precision", "real": "real"}

EXPECTED_PHASES = 9


def source(n: int = 256, dtype: str = "double", maxiter: int = 5) -> str:
    """Fortran-subset source of the Adi kernel for an ``n x n`` problem."""
    decl = _DECL[dtype]
    return f"""
program adi
      implicit none
      integer n, maxiter
      parameter (n = {n}, maxiter = {maxiter})
      {decl} x(n, n), a(n, n), b(n, n), c(n, n), d(n, n), f(n, n)
      integer i, j, iter

c --- phase 1: initialization ------------------------------------------
      do j = 1, n
        do i = 1, n
          x(i, j) = 1.0 + i * 0.5 + j * 0.25
          a(i, j) = 0.25
          b(i, j) = 1.0 + i * 0.003
          c(i, j) = 0.25
          d(i, j) = 1.0 + j * 0.003
          f(i, j) = 0.0
        enddo
      enddo

      do iter = 1, maxiter

c --- i-direction (row) sweep ------------------------------------------
c phase 2: right-hand side for the i sweep (parallel)
        do j = 1, n
          do i = 1, n
            f(i, j) = 2.0 * x(i, j) - f(i, j) * 0.5
          enddo
        enddo
c phase 3: forward elimination along i (flow dep on i, i innermost)
        do j = 1, n
          do i = 2, n
            x(i, j) = x(i, j) - x(i - 1, j) * a(i, j) / b(i - 1, j)
          enddo
        enddo
c phase 4: backward substitution along i (flow dep on i)
        do j = 1, n
          do i = n - 1, 1, -1
            x(i, j) = (x(i, j) - a(i, j) * x(i + 1, j)) / b(i, j)
          enddo
        enddo
c phase 5: update after the i sweep (parallel)
        do j = 1, n
          do i = 1, n
            x(i, j) = x(i, j) + 0.125 * f(i, j)
          enddo
        enddo

c --- j-direction (column) sweep ---------------------------------------
c phase 6: right-hand side for the j sweep (parallel)
        do j = 1, n
          do i = 1, n
            f(i, j) = 2.0 * x(i, j) - f(i, j) * 0.5
          enddo
        enddo
c phase 7: forward elimination along j (flow dep on j, j outermost)
        do j = 2, n
          do i = 1, n
            x(i, j) = x(i, j) - x(i, j - 1) * c(i, j) / d(i, j - 1)
          enddo
        enddo
c phase 8: backward substitution along j (flow dep on j, j outermost)
        do j = n - 1, 1, -1
          do i = 1, n
            x(i, j) = (x(i, j) - c(i, j) * x(i, j + 1)) / d(i, j)
          enddo
        enddo
c phase 9: update after the j sweep (parallel)
        do j = 1, n
          do i = 1, n
            x(i, j) = x(i, j) + 0.125 * f(i, j)
          enddo
        enddo

      enddo
      end
"""
