"""Erlebacher — 3D tridiagonal solver based on ADI integration (ICASE).

Re-creation of the inlined Erlebacher version used in the paper:

* 40 phases: one field-initialization phase plus three *symmetric
  computations* of 13 phases each, one along each problem dimension;
* the three computations share access to the 3-D **read-only** array ``f``;
* four 3-D arrays total (``f``, ``ux``, ``uy``, ``uz``), all aligned
  canonically — no inter-dimensional alignment conflicts;
* per direction, the forward-elimination and backward-substitution phases
  carry a flow dependence along that direction; with all loops ordered
  ``do k / do j / do i`` a static layout yields

  - dim-1 distribution → **fine-grain pipeline** in the x computation
    (never profitable in the paper),
  - dim-2 distribution → **coarse-grain pipeline** in the y computation,
  - dim-3 distribution → **sequentialized** z computation,

  and the dynamic alternative remaps the read-only array once between a
  pair of symmetric computations.
"""

from __future__ import annotations

_DECL = {"double": "double precision", "real": "real"}

EXPECTED_PHASES = 40


def _direction(axis: str) -> str:
    """Emit the 13 phases of one symmetric computation.

    ``axis`` is "x", "y" or "z"; the sweep runs along dimension 1, 2 or 3
    respectively.  Loop order is always ``do k / do j / do i``.
    """
    u = f"u{axis}"
    a, b, c = f"a{axis}", f"b{axis}", f"c{axis}"
    if axis == "x":
        sweep_var, out_plane = "i", "(1, j, k)"
        ref = lambda e: f"({e}, j, k)"  # noqa: E731 - tiny local template
        plane_loops = ("k", "j")
    elif axis == "y":
        sweep_var = "j"
        ref = lambda e: f"(i, {e}, k)"  # noqa: E731
        plane_loops = ("k", "i")
    else:
        sweep_var = "k"
        ref = lambda e: f"(i, j, {e})"  # noqa: E731
        plane_loops = ("j", "i")
    v = sweep_var
    p0, p1 = plane_loops

    def plane_nest(body: str) -> str:
        return (
            f"        do {p0} = 1, n\n"
            f"          do {p1} = 1, n\n"
            f"            {body}\n"
            f"          enddo\n"
            f"        enddo\n"
        )

    def full_nest(body: str, lo: str = "1", hi: str = "n", rev: bool = False) -> str:
        rng = f"{hi}, {lo}, -1" if rev else f"{lo}, {hi}"
        loops = []
        for lv in ("k", "j", "i"):
            if lv == v:
                loops.append(f"do {lv} = {rng}")
            else:
                loops.append(f"do {lv} = 1, n")
        indent = "      "
        text = ""
        for depth, header in enumerate(loops):
            text += indent + "  " * (depth + 1) + header + "\n"
        text += indent + "  " * 4 + body + "\n"
        for depth in range(len(loops) - 1, -1, -1):
            text += indent + "  " * (depth + 1) + "enddo\n"
        return text

    parts = []
    # phases 1-3: tridiagonal coefficient initialization (1-D loops)
    parts.append(
        f"c --- {axis} computation: coefficients\n"
        f"      do {v} = 1, n\n"
        f"        {a}({v}) = 0.25 + 0.001 * {v}\n"
        f"      enddo\n"
        f"      do {v} = 1, n\n"
        f"        {b}({v}) = 1.0 / (2.0 + 0.002 * {v})\n"
        f"      enddo\n"
        f"      do {v} = 1, n\n"
        f"        {c}({v}) = 0.25 - 0.001 * {v}\n"
        f"      enddo\n"
    )
    # phase 4: interior right-hand side (central difference on f)
    parts.append(
        f"c phase: {axis} rhs interior (parallel, shift on f)\n"
        + full_nest(
            f"{u}{ref(v)} = 0.5 * (f{ref(v + ' + 1')} - f{ref(v + ' - 1')})",
            lo="2",
            hi="n - 1",
        )
    )
    # phases 5-6: boundary planes
    parts.append(
        f"c phase: {axis} rhs boundary low\n"
        + plane_nest(f"{u}{ref('1')} = f{ref('2')} - f{ref('1')}")
    )
    parts.append(
        f"c phase: {axis} rhs boundary high\n"
        + plane_nest(f"{u}{ref('n')} = f{ref('n')} - f{ref('n - 1')}")
    )
    # phase 7: scale by diagonal
    parts.append(
        f"c phase: {axis} scale rhs\n"
        + full_nest(f"{u}{ref(v)} = {u}{ref(v)} * {b}({v})")
    )
    # phase 8: forward elimination (flow dependence along the sweep dim)
    parts.append(
        f"c phase: {axis} forward elimination (flow dep on {v})\n"
        + full_nest(
            f"{u}{ref(v)} = {u}{ref(v)} - {a}({v}) * {u}{ref(v + ' - 1')}",
            lo="2",
        )
    )
    # phase 9: last-plane adjustment
    parts.append(
        f"c phase: {axis} last plane\n"
        + plane_nest(f"{u}{ref('n')} = {u}{ref('n')} * {b}(n)")
    )
    # phase 10: backward substitution (flow dependence along the sweep dim)
    parts.append(
        f"c phase: {axis} backward substitution (flow dep on {v})\n"
        + full_nest(
            f"{u}{ref(v)} = {u}{ref(v)} - {c}({v}) * {u}{ref(v + ' + 1')}",
            hi="n - 1",
            rev=True,
        )
    )
    # phase 11: normalization against the field
    parts.append(
        f"c phase: {axis} normalize\n"
        + full_nest(f"{u}{ref(v)} = {u}{ref(v)} * {b}({v}) + 0.01 * f{ref(v)}")
    )
    # phase 12: damping correction
    parts.append(
        f"c phase: {axis} damping\n"
        + full_nest(f"{u}{ref(v)} = {u}{ref(v)} - 0.01 * f{ref(v)}")
    )
    # phase 13: low-boundary smoothing plane
    parts.append(
        f"c phase: {axis} boundary smoothing\n"
        + plane_nest(f"{u}{ref('1')} = 2.0 * {u}{ref('1')} - 0.5 * {u}{ref('2')}")
    )
    return "".join(parts)


def source(n: int = 64, dtype: str = "double") -> str:
    """Fortran-subset source of Erlebacher for an ``n^3`` problem."""
    decl = _DECL[dtype]
    return (
        f"""
program erlebacher
      implicit none
      integer n
      parameter (n = {n})
      {decl} f(n, n, n), ux(n, n, n), uy(n, n, n), uz(n, n, n)
      {decl} ax(n), bx(n), cx(n)
      {decl} ay(n), by(n), cy(n)
      {decl} az(n), bz(n), cz(n)
      integer i, j, k

c --- phase 1: field initialization -------------------------------------
      do k = 1, n
        do j = 1, n
          do i = 1, n
            f(i, j, k) = 1.0 + 0.5 * i + 0.25 * j + 0.125 * k
          enddo
        enddo
      enddo

"""
        + _direction("x")
        + "\n"
        + _direction("y")
        + "\n"
        + _direction("z")
        + "      end\n"
    )
