"""The paper's four evaluation programs as parameterized Fortran sources."""

from . import adi, erlebacher, shallow, tomcatv
from .registry import PROGRAMS, ProgramSpec, get_program

__all__ = ["adi", "erlebacher", "shallow", "tomcatv", "PROGRAMS",
           "ProgramSpec", "get_program"]
