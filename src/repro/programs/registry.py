"""Registry of the paper's four evaluation programs.

Each entry knows how to generate parameterized Fortran-subset source text
(problem size, data type, iteration count) and records the structural
facts the paper states, which the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from . import adi, erlebacher, shallow, tomcatv


@dataclass(frozen=True)
class ProgramSpec:
    """Metadata + source generator for one benchmark program."""

    name: str
    description: str
    source_fn: Callable[..., str]
    expected_phases: int
    template_rank: int
    default_size: int
    default_dtype: str
    has_time_loop: bool
    has_alignment_conflicts: bool
    #: problem sizes and processor counts of this program's test-case grid
    #: (documented in EXPERIMENTS.md; the paper states only the totals)
    grid_sizes: Tuple[int, ...] = ()
    grid_procs: Tuple[int, ...] = ()
    grid_dtypes: Tuple[str, ...] = ()
    #: (dtype, n, procs) tuples added to / removed from the full cross
    #: product, making the per-program case counts match the paper's
    #: (e.g. a large size that only fits the biggest machine)
    grid_extra: Tuple[Tuple[str, int, int], ...] = ()
    grid_skip: Tuple[Tuple[str, int, int], ...] = ()

    def source(self, n: Optional[int] = None, dtype: Optional[str] = None,
               **kwargs) -> str:
        return self.source_fn(
            n=n if n is not None else self.default_size,
            dtype=dtype if dtype is not None else self.default_dtype,
            **kwargs,
        )


PROGRAMS: Dict[str, ProgramSpec] = {
    "adi": ProgramSpec(
        name="adi",
        description="Alternating direction implicit integration kernel",
        source_fn=adi.source,
        expected_phases=adi.EXPECTED_PHASES,
        template_rank=2,
        default_size=256,
        default_dtype="double",
        has_time_loop=True,
        has_alignment_conflicts=False,
        grid_sizes=(200, 264, 392, 520),
        grid_procs=(2, 4, 8, 16, 32),
        grid_dtypes=("real", "double"),
    ),
    "erlebacher": ProgramSpec(
        name="erlebacher",
        description="3D tridiagonal solver based on ADI integration (ICASE)",
        source_fn=erlebacher.source,
        expected_phases=erlebacher.EXPECTED_PHASES,
        template_rank=3,
        default_size=64,
        default_dtype="double",
        has_time_loop=False,
        has_alignment_conflicts=False,
        grid_sizes=(28, 40, 56, 72),
        grid_procs=(2, 4, 8, 16, 32),
        grid_dtypes=("double",),
        # One larger problem that only fits the full machine: 21 cases
        # total, as in the paper.
        grid_extra=(("double", 104, 32),),
    ),
    "tomcatv": ProgramSpec(
        name="tomcatv",
        description="Vectorized mesh generation (SPEC benchmark, APR)",
        source_fn=tomcatv.source,
        expected_phases=tomcatv.EXPECTED_PHASES,
        template_rank=2,
        default_size=128,
        default_dtype="double",
        has_time_loop=True,
        has_alignment_conflicts=True,
        grid_sizes=(72, 136, 264, 544),
        grid_procs=(2, 4, 8, 16, 32),
        grid_dtypes=("double",),
        # The 544x544 double mesh exceeds the two-node memory: 19 cases.
        grid_skip=(("double", 544, 2),),
    ),
    "shallow": ProgramSpec(
        name="shallow",
        description="Shallow-water-equations weather prediction (NCAR)",
        source_fn=shallow.source,
        expected_phases=shallow.EXPECTED_PHASES,
        template_rank=2,
        default_size=384,
        default_dtype="real",
        has_time_loop=True,
        has_alignment_conflicts=False,
        grid_sizes=(136, 264, 392, 520),
        grid_procs=(2, 4, 8, 16, 32),
        grid_dtypes=("real",),
        # The 14-field 520x520 state exceeds the two-node memory: 19 cases.
        grid_skip=(("real", 520, 2),),
    ),
}


def get_program(name: str) -> ProgramSpec:
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; available: {sorted(PROGRAMS)}"
        ) from None
