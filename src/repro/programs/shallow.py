"""Shallow — NCAR shallow-water-equations weather prediction benchmark.

Re-creation of Paul Swarztrauber's ~200-line benchmark as the paper uses
it:

* 28 phases: five initialization phases plus twenty-three phases inside
  the time-step loop;
* the main computations are two-dimensional finite-difference stencils
  parallelizable in either dimension — no loop-carried flow dependences
  and no inter-dimensional alignment conflicts, so every candidate layout
  search space has exactly two entries (row / column);
* a **row** distribution communicates boundary *rows*, which are strided
  in column-major storage and therefore need message buffering; the
  column distribution sends contiguous columns — hence column should
  perform slightly better, as the paper observes;
* the periodic-continuation phases (1-D wrap-around copies) communicate
  under one distribution and stay local under the other, symmetrically.
"""

from __future__ import annotations

_DECL = {"double": "double precision", "real": "real"}

EXPECTED_PHASES = 28


def _wrap_phases(name: str) -> str:
    """Periodic continuation for one field: copy last row to first and
    last column to first (two 1-D phases)."""
    return f"""
        do j = 1, n
          {name}(1, j) = {name}(n, j)
        enddo
        do i = 1, n
          {name}(i, 1) = {name}(i, n)
        enddo
"""


def source(n: int = 384, dtype: str = "real", maxiter: int = 5) -> str:
    """Fortran-subset source of Shallow for an ``n x n`` grid."""
    decl = _DECL[dtype]
    return f"""
program shallow
      implicit none
      integer n, maxiter
      parameter (n = {n}, maxiter = {maxiter})
      {decl} u(n, n), v(n, n), p(n, n)
      {decl} unew(n, n), vnew(n, n), pnew(n, n)
      {decl} uold(n, n), vold(n, n), pold(n, n)
      {decl} cu(n, n), cv(n, n), z(n, n), h(n, n), psi(n, n)
      {decl} alpha, tdt, fsdx, fsdy
      integer i, j, iter

      alpha = 0.001
      tdt = 90.0
      fsdx = 4.0 / 100000.0
      fsdy = 4.0 / 100000.0

c --- phase 1: stream function ------------------------------------------
      do j = 1, n
        do i = 1, n
          psi(i, j) = 50000.0 * sin(0.01 * i) * sin(0.01 * j)
        enddo
      enddo
c --- phase 2: pressure -------------------------------------------------
      do j = 1, n
        do i = 1, n
          p(i, j) = 50000.0 + 2500.0 * cos(0.02 * j) * cos(0.04 * i)
        enddo
      enddo
c --- phase 3: u velocity -----------------------------------------------
      do j = 1, n - 1
        do i = 1, n - 1
          u(i + 1, j) = -(psi(i + 1, j + 1) - psi(i + 1, j)) * 0.001
        enddo
      enddo
c --- phase 4: v velocity -----------------------------------------------
      do j = 1, n - 1
        do i = 1, n - 1
          v(i, j + 1) = (psi(i + 1, j + 1) - psi(i, j + 1)) * 0.001
        enddo
      enddo
c --- phase 5: save old fields ------------------------------------------
      do j = 1, n
        do i = 1, n
          uold(i, j) = u(i, j)
          vold(i, j) = v(i, j)
          pold(i, j) = p(i, j)
        enddo
      enddo

      do iter = 1, maxiter

c --- phases 6-9: capital letters (mass fluxes, vorticity, height) ------
        do j = 1, n - 1
          do i = 1, n - 1
            cu(i + 1, j) = 0.5 * (p(i + 1, j) + p(i, j)) * u(i + 1, j)
          enddo
        enddo
        do j = 1, n - 1
          do i = 1, n - 1
            cv(i, j + 1) = 0.5 * (p(i, j + 1) + p(i, j)) * v(i, j + 1)
          enddo
        enddo
        do j = 1, n - 1
          do i = 1, n - 1
            z(i + 1, j + 1) = (fsdx * (v(i + 1, j + 1) - v(i, j + 1)) -&
              fsdy * (u(i + 1, j + 1) - u(i + 1, j))) /&
              (p(i, j) + p(i + 1, j) + p(i + 1, j + 1) + p(i, j + 1))
          enddo
        enddo
        do j = 1, n - 1
          do i = 1, n - 1
            h(i, j) = p(i, j) + 0.25 * (u(i + 1, j) * u(i + 1, j) +&
              u(i, j) * u(i, j) + v(i, j + 1) * v(i, j + 1) +&
              v(i, j) * v(i, j))
          enddo
        enddo

c --- phases 10-17: periodic continuation for cu, cv, z, h --------------
{_wrap_phases("cu")}{_wrap_phases("cv")}{_wrap_phases("z")}{_wrap_phases("h")}
c --- phases 18-20: new time level --------------------------------------
        do j = 2, n - 1
          do i = 2, n - 1
            unew(i, j) = uold(i, j) + 0.25 * tdt * (z(i, j + 1) +&
              z(i, j)) * (cv(i, j + 1) + cv(i - 1, j + 1) + cv(i - 1, j)&
              + cv(i, j)) - tdt * fsdx * (h(i, j) - h(i - 1, j))
          enddo
        enddo
        do j = 2, n - 1
          do i = 2, n - 1
            vnew(i, j) = vold(i, j) - 0.25 * tdt * (z(i + 1, j) +&
              z(i, j)) * (cu(i + 1, j) + cu(i, j) + cu(i, j - 1) +&
              cu(i + 1, j - 1)) - tdt * fsdy * (h(i, j) - h(i, j - 1))
          enddo
        enddo
        do j = 2, n - 1
          do i = 2, n - 1
            pnew(i, j) = pold(i, j) - tdt * fsdx * (cu(i + 1, j) -&
              cu(i, j)) - tdt * fsdy * (cv(i, j + 1) - cv(i, j))
          enddo
        enddo

c --- phases 21-26: periodic continuation for the new fields ------------
{_wrap_phases("unew")}{_wrap_phases("vnew")}{_wrap_phases("pnew")}
c --- phase 27: time smoothing of old fields ----------------------------
        do j = 1, n
          do i = 1, n
            uold(i, j) = u(i, j) + alpha * (unew(i, j) - 2.0 * u(i, j)&
              + uold(i, j))
            vold(i, j) = v(i, j) + alpha * (vnew(i, j) - 2.0 * v(i, j)&
              + vold(i, j))
            pold(i, j) = p(i, j) + alpha * (pnew(i, j) - 2.0 * p(i, j)&
              + pold(i, j))
          enddo
        enddo
c --- phase 28: advance current fields ----------------------------------
        do j = 1, n
          do i = 1, n
            u(i, j) = unew(i, j)
            v(i, j) = vnew(i, j)
            p(i, j) = pnew(i, j)
          enddo
        enddo

      enddo
      end
"""
