"""Tomcatv — vectorized mesh-generation program (SPEC, APR adaptation).

Re-creation of the structure the paper reports:

* 17 phases: two initialization phases plus fifteen phases inside the main
  iterative loop;
* **inter-dimensional alignment conflicts for two of its 2-D arrays**: the
  workspace arrays ``aa`` and ``dd`` are written canonically alongside the
  mesh arrays in the coefficient phases, but the tridiagonal solver phases
  access them *transposed* (``aa(j, i)`` next to ``rx(i, j)``);
* the greedy reverse-postorder partitioner therefore splits the phases
  into two classes, whose mutual imports create two conflicted merged CAGs
  that are resolved optimally by the 0-1 formulation;
* the solver sweeps carry flow dependences along dimension 1 with ``i``
  innermost, so a row (dim-1) distribution fine-grain-pipelines them while
  a column (dim-2) distribution stays parallel — making column-wise the
  best layout nearly always, as in the paper;
* control flow inside the main loop (the residual test guarding the
  smoothing phases) exercises the 50%-branch-probability guess studied in
  Figure 6.
"""

from __future__ import annotations

_DECL = {"double": "double precision", "real": "real"}

EXPECTED_PHASES = 17

#: Source line (1-based, within :func:`source` output) of the IF statement
#: guarding the smoothing phases; used to override its branch probability
#: in the Figure 6 experiment.  Kept in sync by tests.
SMOOTHING_IF_LINE_MARKER = "if (rmax .gt. tol) then"


def source(n: int = 128, dtype: str = "double", maxiter: int = 5) -> str:
    """Fortran-subset source of Tomcatv for an ``n x n`` mesh."""
    decl = _DECL[dtype]
    return f"""
program tomcatv
      implicit none
      integer n, maxiter
      parameter (n = {n}, maxiter = {maxiter})
      {decl} x(n, n), y(n, n)
      {decl} rx(n, n), ry(n, n)
      {decl} aa(n, n), dd(n, n)
      {decl} rmax, tol, omega
      integer i, j, iter

      tol = 0.000001
      omega = 0.8

c --- phase 1: mesh initialization --------------------------------------
      do j = 1, n
        do i = 1, n
          x(i, j) = 0.25 * i + 0.003 * j
          y(i, j) = 0.25 * j - 0.001 * i
        enddo
      enddo
c --- phase 2: workspace initialization ---------------------------------
      do j = 1, n
        do i = 1, n
          rx(i, j) = 0.0
          ry(i, j) = 0.0
          aa(i, j) = -0.5
          dd(i, j) = 2.0
        enddo
      enddo

      do iter = 1, maxiter

c --- phase 3: residual in x (5-point stencil) --------------------------
        do j = 2, n - 1
          do i = 2, n - 1
            rx(i, j) = x(i + 1, j) - 2.0 * x(i, j) + x(i - 1, j) +&
                       x(i, j + 1) - 2.0 * x(i, j) + x(i, j - 1)
          enddo
        enddo
c --- phase 4: residual in y --------------------------------------------
        do j = 2, n - 1
          do i = 2, n - 1
            ry(i, j) = y(i + 1, j) - 2.0 * y(i, j) + y(i - 1, j) +&
                       y(i, j + 1) - 2.0 * y(i, j) + y(i, j - 1)
          enddo
        enddo
c --- phase 5: solver coefficients aa (canonical access) ----------------
        do j = 2, n - 1
          do i = 2, n - 1
            aa(i, j) = -0.125 * (x(i, j + 1) - x(i, j - 1)) -&
                       0.125 * (y(i, j + 1) - y(i, j - 1))
          enddo
        enddo
c --- phase 6: solver diagonal dd (canonical access) --------------------
        do j = 2, n - 1
          do i = 2, n - 1
            dd(i, j) = 2.0 + 0.25 * (x(i + 1, j) - x(i - 1, j)) +&
                       0.25 * (y(i + 1, j) - y(i - 1, j))
          enddo
        enddo
c --- phase 7: maximum residual (reduction) -----------------------------
        rmax = 0.0
        do j = 2, n - 1
          do i = 2, n - 1
            rmax = max(rmax, abs(rx(i, j)) + abs(ry(i, j)))
          enddo
        enddo
c --- phase 8: forward elimination for rx (aa/dd transposed) ------------
        do j = 2, n - 1
          do i = 3, n - 1
            rx(i, j) = rx(i, j) - aa(j, i) * rx(i - 1, j) / dd(j, i - 1)
          enddo
        enddo
c --- phase 9: backward substitution for rx (aa/dd transposed) ----------
        do j = 2, n - 1
          do i = n - 2, 2, -1
            rx(i, j) = (rx(i, j) - aa(j, i) * rx(i + 1, j)) / dd(j, i)
          enddo
        enddo
c --- phase 10: forward elimination for ry ------------------------------
        do j = 2, n - 1
          do i = 3, n - 1
            ry(i, j) = ry(i, j) - aa(j, i) * ry(i - 1, j) / dd(j, i - 1)
          enddo
        enddo
c --- phase 11: backward substitution for ry ----------------------------
        do j = 2, n - 1
          do i = n - 2, 2, -1
            ry(i, j) = (ry(i, j) - aa(j, i) * ry(i + 1, j)) / dd(j, i)
          enddo
        enddo
c --- phase 12: mesh correction in x ------------------------------------
        do j = 2, n - 1
          do i = 2, n - 1
            x(i, j) = x(i, j) + omega * rx(i, j)
          enddo
        enddo
c --- phase 13: mesh correction in y ------------------------------------
        do j = 2, n - 1
          do i = 2, n - 1
            y(i, j) = y(i, j) + omega * ry(i, j)
          enddo
        enddo
c --- phase 14: bottom boundary extrapolation ---------------------------
        do i = 1, n
          x(i, 1) = 2.0 * x(i, 2) - x(i, 3)
        enddo
c --- phase 15: top boundary extrapolation ------------------------------
        do i = 1, n
          y(i, n) = 2.0 * y(i, n - 1) - y(i, n - 2)
        enddo
c --- phases 16-17: smoothing, guarded by the residual test -------------
        if (rmax .gt. tol) then
          do j = 2, n - 1
            do i = 2, n - 1
              x(i, j) = x(i, j) + 0.025 * (rx(i + 1, j) +&
                        rx(i - 1, j) + rx(i, j + 1) + rx(i, j - 1))
            enddo
          enddo
          do j = 2, n - 1
            do i = 2, n - 1
              y(i, j) = y(i, j) + 0.025 * (ry(i + 1, j) +&
                        ry(i - 1, j) + ry(i, j + 1) + ry(i, j - 1))
            enddo
          enddo
        endif

      enddo
      end
"""


def smoothing_if_line(src: str) -> int:
    """Source line of the residual-test IF (for branch-prob overrides)."""
    for lineno, text in enumerate(src.splitlines(), start=1):
        if SMOOTHING_IF_LINE_MARKER in text:
            return lineno
    raise ValueError("smoothing IF not found in Tomcatv source")
