"""``repro.obs`` — pipeline-wide observability.

The instrumentation base for the production-service north star: every
framework step (parse, partition, CAG build, conflict resolution, each
ILP solve, distribution enumeration, estimation, selection) reports
hierarchical wall-time spans and structured decision events into one
trace, propagated through the service worker pool in all three pool
kinds.  On top of the span stream:

- :mod:`tracing`    — spans, trace IDs, context propagation, the
  worker-pool job wrapper;
- :mod:`events`     — the JSON trace format and its schema validator;
- :mod:`chrome`     — Chrome trace-event (``chrome://tracing``) export;
- :mod:`provenance` — the ``repro explain`` decision-provenance report;
- :mod:`prometheus` — Prometheus text exposition of the service
  metrics registry (counters, cache, histograms with quantiles, pool
  health, span aggregates);
- :mod:`log`        — the ``repro`` logger hierarchy behind
  ``--log-level``;
- :mod:`telemetry`  — the append-only NDJSON event log (rotation,
  crash-tolerant reads) and the process-wide ``emit`` sink registry;
- :mod:`window`     — sliding-window latency sketches (time-bucketed
  ring of mergeable geometric-bucket quantile sketches);
- :mod:`slo`        — declarative objectives, error budgets, and
  burn-rate alerting over the windows.

With no active tracer every hook is a no-op and pipeline results are
bitwise-identical to uninstrumented runs.
"""

from .chrome import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .events import (
    TraceValidationError,
    iter_events,
    load_trace,
    spans_by_name,
    validate_trace,
    write_trace,
)
from .log import LOG_LEVELS, configure_logging, get_logger
from .prometheus import parse_prometheus_text, render_prometheus
from .provenance import build_provenance, format_provenance
from .slo import (
    SLO_SCHEMA,
    Objective,
    SLOReport,
    SLOValidationError,
    evaluate_objectives,
    format_slo_report,
    load_objectives,
    window_from_events,
)
from .telemetry import (
    EVENT_SCHEMA,
    EventLog,
    EventValidationError,
    emit,
    install_sink,
    read_event_log,
    remove_sink,
    validate_event,
    validate_event_log,
)
from .tracing import (
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    activate,
    active,
    active_tracer,
    add_event,
    current_span_id,
    finish_trace,
    run_traced_job,
    span,
    start_trace,
)
from .window import LogBucketSketch, WindowedOpStats

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "EventValidationError",
    "LOG_LEVELS",
    "LogBucketSketch",
    "Objective",
    "SLOReport",
    "SLOValidationError",
    "SLO_SCHEMA",
    "SpanRecord",
    "TRACE_SCHEMA",
    "TraceValidationError",
    "Tracer",
    "WindowedOpStats",
    "activate",
    "active",
    "active_tracer",
    "add_event",
    "build_provenance",
    "configure_logging",
    "current_span_id",
    "emit",
    "evaluate_objectives",
    "finish_trace",
    "format_provenance",
    "format_slo_report",
    "get_logger",
    "install_sink",
    "iter_events",
    "load_objectives",
    "load_trace",
    "parse_prometheus_text",
    "read_event_log",
    "remove_sink",
    "render_prometheus",
    "run_traced_job",
    "validate_event",
    "validate_event_log",
    "window_from_events",
    "span",
    "spans_by_name",
    "start_trace",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_trace",
    "write_chrome_trace",
    "write_trace",
]
