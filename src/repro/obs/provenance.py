"""Decision provenance: reconstruct *why* each array got its layout.

The pipeline records its decisions as structured span events while it
runs (CAG edge weights, conflict resolutions, alignment imports,
candidate costs, ILP solves, remapping choices).  This module replays a
recorded trace into a report answering the questions an HPF programmer
asks of the assistant:

- which candidate was selected for each phase, at what predicted cost,
  and by what margin over the runner-up;
- which alignment preferences (CAG edges) supported each array's
  orientation, and which were cut to resolve conflicts;
- which inter-class imports contributed candidates to the search space;
- where remapping was chosen, what it costs, and which arrays cross
  the remap edge;
- every ILP solve behind those answers, with model sizes.

The report is a plain dict (JSON-safe) rendered to text by
:func:`format_provenance`; ``repro explain`` prints it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from .events import iter_events, spans_by_name

#: report format tag
PROVENANCE_SCHEMA = "repro.obs/provenance/v1"


def _array_of(node_text: str) -> str:
    """``"a[0]"`` -> ``"a"``."""
    return node_text.partition("[")[0]


def build_provenance(trace: Mapping[str, Any]) -> Dict[str, Any]:
    """Distill a recorded trace into the decision-provenance report."""
    report: Dict[str, Any] = {
        "schema": PROVENANCE_SCHEMA,
        "trace_id": trace.get("trace_id"),
        "objective_us": None,
        "backend": None,
        "optimal": True,
        "degradations": [],
        "phases": [],
        "arrays": {},
        "conflicts": [],
        "imports": [],
        "remaps": [],
        "ilp_solves": [],
    }

    # -- degradation notes (anytime-ILP fallbacks) -----------------------
    for _span, event in iter_events(trace, "resilience.degraded"):
        attrs = event.get("attrs", {})
        report["degradations"].append({
            "stage": attrs.get("stage"),
            "reason": attrs.get("reason"),
            "detail": attrs.get("detail"),
        })
    report["optimal"] = not report["degradations"]

    # -- global selection facts ------------------------------------------
    for span in spans_by_name(trace, "selection.solve"):
        attrs = span.get("attrs", {})
        if "objective_us" in attrs:
            report["objective_us"] = attrs["objective_us"]
        report["backend"] = attrs.get("backend", report["backend"])

    for span in spans_by_name(trace, "ilp.solve"):
        attrs = span.get("attrs", {})
        report["ilp_solves"].append({
            "name": attrs.get("name"),
            "backend": attrs.get("backend"),
            "variables": attrs.get("variables"),
            "constraints": attrs.get("constraints"),
            "nodes": attrs.get("nodes"),
            "status": attrs.get("status"),
            "objective": attrs.get("objective"),
            "duration_us": span.get("duration_us"),
        })

    # -- search-space shape per phase ------------------------------------
    space_by_phase: Dict[int, Dict[str, Any]] = {}
    for span in spans_by_name(trace, "distribution.phase"):
        attrs = span.get("attrs", {})
        if "phase" in attrs:
            space_by_phase[attrs["phase"]] = {
                "generated": attrs.get("generated"),
                "pruned": attrs.get("pruned"),
                "kept": attrs.get("kept"),
            }

    # -- the chosen candidate per phase ----------------------------------
    arrays: Dict[str, Dict[str, Any]] = {}

    def array_entry(name: str) -> Dict[str, Any]:
        return arrays.setdefault(name, {
            "alignments": {},
            "cag_edges": [],
            "transitions": [],
            "remaps": [],
        })

    for _span, event in iter_events(trace, "selection.choice"):
        attrs = event.get("attrs", {})
        phase = attrs.get("phase")
        costs = attrs.get("costs_us") or []
        chosen = attrs.get("node_cost_us")
        margin = None
        if chosen is not None and len(costs) > 1:
            others = sorted(c for i, c in enumerate(costs)
                            if i != attrs.get("position"))
            if others:
                margin = others[0] - chosen
        report["phases"].append({
            "phase": phase,
            "position": attrs.get("position"),
            "layout": attrs.get("layout"),
            "distribution": attrs.get("distribution"),
            "alignment_provenance": attrs.get("alignment_provenance"),
            "node_cost_us": chosen,
            "alternatives": max(len(costs) - 1, 0),
            "margin_us": margin,
            "candidate_costs_us": costs,
            "search_space": space_by_phase.get(phase),
        })
        for name, alignment in (attrs.get("alignments") or {}).items():
            array_entry(name)["alignments"][str(phase)] = alignment
    report["phases"].sort(key=lambda p: (p["phase"] is None, p["phase"]))

    # -- supporting CAG evidence -----------------------------------------
    for _span, event in iter_events(trace, "cag.edge"):
        attrs = event.get("attrs", {})
        edge = {
            "phase": attrs.get("phase"),
            "edge": f"{attrs.get('src')}--{attrs.get('dst')}",
            "weight": attrs.get("weight"),
        }
        for end in ("src", "dst"):
            name = _array_of(str(attrs.get(end, "")))
            if name:
                array_entry(name)["cag_edges"].append(edge)

    for _span, event in iter_events(trace, "alignment.cut"):
        attrs = event.get("attrs", {})
        report["conflicts"].append({
            "name": attrs.get("name"),
            "cut_edges": attrs.get("cut_edges", []),
            "cut_weight": attrs.get("cut_weight"),
        })

    for _span, event in iter_events(trace, "alignment.import"):
        attrs = event.get("attrs", {})
        report["imports"].append({
            "source": attrs.get("source"),
            "sink": attrs.get("sink"),
            "accepted": attrs.get("accepted"),
        })

    # -- remapping decisions ---------------------------------------------
    transitions_of: Dict[Tuple[Any, Any], List[str]] = {}
    for _span, event in iter_events(trace, "graph.transitions"):
        attrs = event.get("attrs", {})
        name = attrs.get("array")
        if not name:
            continue
        entry = array_entry(name)
        entry["transitions"] = attrs.get("transitions", [])
        for src, dst, _freq in entry["transitions"]:
            transitions_of.setdefault((src, dst), []).append(name)

    for _span, event in iter_events(trace, "selection.remap"):
        attrs = event.get("attrs", {})
        if not attrs.get("remapped"):
            continue
        src = attrs.get("src_phase")
        dst = attrs.get("dst_phase")
        crossing = sorted(set(transitions_of.get((src, dst), [])))
        remap = {
            "src_phase": src,
            "dst_phase": dst,
            "cost_us": attrs.get("cost_us"),
            "arrays": crossing,
        }
        report["remaps"].append(remap)
        for name in crossing:
            array_entry(name)["remaps"].append({
                "src_phase": src,
                "dst_phase": dst,
                "cost_us": attrs.get("cost_us"),
            })

    report["arrays"] = {name: arrays[name] for name in sorted(arrays)}
    return report


def _fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "?"
    return f"{value / 1000.0:.3f} ms"


def format_provenance(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a provenance report."""
    lines = [
        f"decision provenance — trace {report.get('trace_id', '?')}",
    ]
    if report.get("objective_us") is not None:
        lines.append(
            f"predicted total: {report['objective_us'] / 1e6:.4f} s "
            f"(selection backend: {report.get('backend', '?')})"
        )
    degradations = report.get("degradations", [])
    if degradations:
        lines.append(
            "DEGRADED result — not certified optimal "
            f"({len(degradations)} fallback decision(s)):"
        )
        for note in degradations:
            detail = f" — {note['detail']}" if note.get("detail") else ""
            lines.append(
                f"  {note.get('stage')}: {note.get('reason')}{detail}"
            )

    for phase in report.get("phases", []):
        space = phase.get("search_space") or {}
        space_txt = ""
        if space.get("generated") is not None:
            space_txt = (
                f"  [search space: {space['generated']} generated, "
                f"{space['pruned']} pruned, {space['kept']} kept]"
            )
        margin = phase.get("margin_us")
        margin_txt = (
            f", margin {_fmt_us(margin)} over runner-up"
            if margin is not None else ""
        )
        lines.append(
            f"phase {phase['phase']}: candidate c{phase['position']} "
            f"at {_fmt_us(phase.get('node_cost_us'))} "
            f"({phase.get('alternatives', 0)} alternatives{margin_txt})"
            f"{space_txt}"
        )
        if phase.get("layout"):
            for row in str(phase["layout"]).splitlines():
                lines.append(f"    {row}")
        if phase.get("alignment_provenance"):
            lines.append(
                f"    alignment source: {phase['alignment_provenance']}"
            )

    arrays = report.get("arrays", {})
    if arrays:
        lines.append("arrays:")
    for name, info in arrays.items():
        alignments = info.get("alignments", {})
        distinct = sorted(set(alignments.values()))
        if len(distinct) == 1:
            align_txt = f"aligned {distinct[0]} in every phase"
        elif distinct:
            per_phase = ", ".join(
                f"phase {p}: {a}" for p, a in sorted(
                    alignments.items(), key=lambda kv: str(kv[0])
                )
            )
            align_txt = f"alignment varies ({per_phase})"
        else:
            align_txt = "no recorded alignment"
        lines.append(f"  {name}: {align_txt}")
        edges = sorted(
            info.get("cag_edges", []),
            key=lambda e: -(e.get("weight") or 0.0),
        )
        for edge in edges[:4]:
            lines.append(
                f"      CAG support: {edge['edge']} "
                f"w={edge.get('weight'):g} (phase {edge.get('phase')})"
            )
        for remap in info.get("remaps", []):
            lines.append(
                f"      remapped phase {remap['src_phase']} -> "
                f"{remap['dst_phase']} at {_fmt_us(remap.get('cost_us'))}"
            )

    conflicts = report.get("conflicts", [])
    if conflicts:
        lines.append("conflict resolutions (minimum-weight edge cuts):")
        for conflict in conflicts:
            cut = ", ".join(conflict.get("cut_edges", [])) or "(none)"
            lines.append(
                f"  {conflict.get('name')}: cut {cut} "
                f"(weight {conflict.get('cut_weight')})"
            )

    imports = report.get("imports", [])
    accepted = [i for i in imports if i.get("accepted")]
    if imports:
        lines.append(
            f"alignment imports: {len(accepted)} accepted, "
            f"{len(imports) - len(accepted)} rejected as weaker-or-equal"
        )
        for imp in accepted:
            lines.append(f"  {imp.get('source')} -> {imp.get('sink')}")

    remaps = report.get("remaps", [])
    if remaps:
        lines.append("remapping decisions:")
        for remap in remaps:
            crossing = ", ".join(remap.get("arrays", [])) or "?"
            lines.append(
                f"  phase {remap['src_phase']} -> {remap['dst_phase']} "
                f"at {_fmt_us(remap.get('cost_us'))} (arrays: {crossing})"
            )
    elif report.get("phases"):
        lines.append("remapping decisions: none (static layout)")

    solves = report.get("ilp_solves", [])
    if solves:
        largest = max(solves, key=lambda s: s.get("variables") or 0)
        lines.append(
            f"ILP solves: {len(solves)} total; largest "
            f"{largest.get('name')!r} with {largest.get('variables')} "
            f"variables x {largest.get('constraints')} constraints"
        )
        for solve in solves:
            lines.append(
                f"  {solve.get('name')}: {solve.get('variables')} vars, "
                f"{solve.get('constraints')} cons, "
                f"{solve.get('status')} in "
                f"{_fmt_us(solve.get('duration_us'))}"
            )
    return "\n".join(lines)
