"""The structured JSON trace/event log: serialization and validation.

A serialized trace is one JSON object::

    {
      "schema": "repro.obs/trace/v1",
      "trace_id": "4f2a...",
      "name": "analyze",
      "created_us": 1730000000000000,
      "spans": [
        {"span_id": "1", "parent_id": null, "name": "pipeline",
         "start_us": ..., "duration_us": ..., "attrs": {...},
         "events": [{"name": "cag.edge", "attrs": {...}}, ...]},
        ...
      ],
      "events": [...]          # trace-level events (no open span)
    }

:func:`validate_trace` is the schema checker used by tests, the CI
tracing smoke job, and the CLI after writing a trace file — validation
failures raise :class:`TraceValidationError` with a pointed message.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from .tracing import TRACE_SCHEMA


class TraceValidationError(ValueError):
    """A trace object does not conform to the v1 schema."""


_SPAN_REQUIRED = ("span_id", "name", "start_us", "duration_us")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise TraceValidationError(message)


def _check_event(event: Any, where: str) -> None:
    _check(isinstance(event, Mapping), f"{where}: event is not an object")
    _check(
        isinstance(event.get("name"), str) and event["name"],
        f"{where}: event lacks a non-empty 'name'",
    )
    attrs = event.get("attrs", {})
    _check(isinstance(attrs, Mapping), f"{where}: event attrs not an object")
    try:
        json.dumps(attrs)
    except (TypeError, ValueError) as exc:
        raise TraceValidationError(
            f"{where}: event attrs not JSON-serializable: {exc}"
        ) from None


def validate_trace(trace: Mapping[str, Any]) -> None:
    """Raise :class:`TraceValidationError` unless ``trace`` is a valid
    v1 trace object (correct schema tag, well-formed spans, unique span
    IDs, every parent resolvable, JSON-safe attributes)."""
    _check(isinstance(trace, Mapping), "trace is not an object")
    _check(
        trace.get("schema") == TRACE_SCHEMA,
        f"schema must be {TRACE_SCHEMA!r}, got {trace.get('schema')!r}",
    )
    _check(
        isinstance(trace.get("trace_id"), str) and trace["trace_id"],
        "trace_id must be a non-empty string",
    )
    spans = trace.get("spans")
    _check(isinstance(spans, list), "spans must be a list")

    seen: set = set()
    for i, span in enumerate(spans):
        where = f"spans[{i}]"
        _check(isinstance(span, Mapping), f"{where}: not an object")
        for key in _SPAN_REQUIRED:
            _check(key in span, f"{where}: missing {key!r}")
        _check(
            isinstance(span["span_id"], str) and span["span_id"],
            f"{where}: span_id must be a non-empty string",
        )
        _check(
            span["span_id"] not in seen,
            f"{where}: duplicate span_id {span['span_id']!r}",
        )
        seen.add(span["span_id"])
        _check(
            isinstance(span["name"], str) and span["name"],
            f"{where}: name must be a non-empty string",
        )
        for key in ("start_us", "duration_us"):
            value = span[key]
            _check(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"{where}: {key} must be a non-negative integer",
            )
        attrs = span.get("attrs", {})
        _check(isinstance(attrs, Mapping), f"{where}: attrs not an object")
        try:
            json.dumps(attrs)
        except (TypeError, ValueError) as exc:
            raise TraceValidationError(
                f"{where}: attrs not JSON-serializable: {exc}"
            ) from None
        events = span.get("events", [])
        _check(isinstance(events, list), f"{where}: events not a list")
        for j, event in enumerate(events):
            _check_event(event, f"{where}.events[{j}]")

    # Parent links second pass: every non-null parent must resolve.
    for i, span in enumerate(spans):
        parent = span.get("parent_id")
        _check(
            parent is None or (isinstance(parent, str) and parent in seen),
            f"spans[{i}]: parent_id {parent!r} does not name a span",
        )

    for j, event in enumerate(trace.get("events", [])):
        _check_event(event, f"events[{j}]")


def write_trace(trace: Mapping[str, Any], path: str) -> None:
    """Validate then write a trace as indented JSON."""
    validate_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_trace(path: str) -> Dict[str, Any]:
    """Read and validate a trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    validate_trace(trace)
    return trace


def iter_events(
    trace: Mapping[str, Any], name: Optional[str] = None
) -> Iterator[Tuple[Optional[Dict[str, Any]], Dict[str, Any]]]:
    """Yield ``(span, event)`` pairs across the whole trace, optionally
    filtered by event name (span is ``None`` for trace-level events)."""
    for span in trace.get("spans", []):
        for event in span.get("events", []):
            if name is None or event.get("name") == name:
                yield span, event
    for event in trace.get("events", []):
        if name is None or event.get("name") == name:
            yield None, event


def spans_by_name(
    trace: Mapping[str, Any], name: str
) -> List[Dict[str, Any]]:
    """All spans of one name, in recorded order."""
    return [s for s in trace.get("spans", []) if s.get("name") == name]
