"""Prometheus text exposition of the service observability snapshot.

:func:`render_prometheus` folds everything the service knows — request
counters, per-stage cache hit/miss counts, stage and span wall-time
histograms (with bucket-derived p50/p95/p99 quantile gauges), worker
pool health (active kind, degradation count), and disk cache sizes —
into one text-format registry, the output of both the service's
``metrics`` protocol op and the one-shot ``stats --prometheus`` CLI.

Histogram quantiles cannot ride on the histogram family itself in the
text format, so they are exposed as sibling ``*_quantile`` gauge
families (``repro_stage_seconds_quantile{stage="frontend",
quantile="0.95"}``), computed from the cumulative buckets by
:meth:`repro.service.metrics.Histogram.quantile`.

:func:`parse_prometheus_text` is a small reference parser used by the
tests and the CI smoke job to prove the exposition stays parseable.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

_METRIC_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: quantiles exposed for every histogram family
QUANTILE_KEYS = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Family:
    """One metric family: TYPE/HELP header plus its samples."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[Tuple[str, Dict[str, str], Any]] = []

    def add(self, value: Any, suffix: str = "", **labels: Any) -> None:
        self.samples.append(
            (suffix, {k: str(v) for k, v in labels.items()}, value)
        )

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            label_txt = ""
            if labels:
                inner = ",".join(
                    f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
                )
                label_txt = "{" + inner + "}"
            lines.append(
                f"{self.name}{suffix}{label_txt} {_fmt_value(value)}"
            )
        return lines


class Registry:
    """An ordered set of metric families under one namespace."""

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._families: Dict[str, _Family] = {}

    def family(self, name: str, kind: str, help_text: str) -> _Family:
        full = f"{self.namespace}_{name}"
        if full not in self._families:
            self._families[full] = _Family(full, kind, help_text)
        return self._families[full]

    def render(self) -> str:
        lines: List[str] = []
        for family in self._families.values():
            if family.samples:
                lines.extend(family.render())
        return "\n".join(lines) + "\n"


def _add_histogram(
    registry: Registry,
    base: str,
    help_text: str,
    label_name: str,
    label_value: str,
    snap: Mapping[str, Any],
) -> None:
    """Emit one labeled histogram plus its quantile gauges."""
    hist = registry.family(base, "histogram", help_text)
    labels = {label_name: label_value}
    for le, cumulative in snap.get("buckets", {}).items():
        hist.add(cumulative, suffix="_bucket", le=le, **labels)
    hist.add(snap.get("sum", 0.0), suffix="_sum", **labels)
    hist.add(snap.get("count", 0), suffix="_count", **labels)

    quantiles = snap.get("quantiles") or {}
    if quantiles:
        qfam = registry.family(
            f"{base}_quantile", "gauge",
            f"Bucket-derived quantiles of {registry.namespace}_{base}",
        )
        for q_label, key in QUANTILE_KEYS:
            if key in quantiles:
                qfam.add(quantiles[key], quantile=q_label, **labels)


def render_prometheus(
    stats: Mapping[str, Any], namespace: str = "repro"
) -> str:
    """Render a :meth:`LayoutService.stats` snapshot as Prometheus text."""
    registry = Registry(namespace)

    registry.family(
        "uptime_seconds", "gauge", "Seconds since the metrics registry "
        "was created",
    ).add(stats.get("uptime_seconds", 0.0))

    counters = registry.family(
        "counter_total", "counter", "Service event counters",
    )
    for name, value in sorted(stats.get("counters", {}).items()):
        counters.add(value, name=name)

    # Degraded responses get a first-class family (beyond the generic
    # counter row) so dashboards can alert on it directly.
    registry.family(
        "degraded_total", "counter",
        "Requests answered with a labeled-degraded (non-optimal) result",
    ).add(stats.get("counters", {}).get("requests_degraded", 0))

    cache = stats.get("cache", {})
    registry.family(
        "cache_hits_total", "counter", "Stage cache hits (all stages)",
    ).add(cache.get("hits", 0))
    registry.family(
        "cache_misses_total", "counter", "Stage cache misses (all stages)",
    ).add(cache.get("misses", 0))
    per_stage_hits = registry.family(
        "stage_cache_hits_total", "counter", "Stage cache hits per stage",
    )
    per_stage_misses = registry.family(
        "stage_cache_misses_total", "counter",
        "Stage cache misses per stage",
    )
    for stage, slot in sorted(cache.get("per_stage", {}).items()):
        per_stage_hits.add(slot.get("hits", 0), stage=stage)
        per_stage_misses.add(slot.get("misses", 0), stage=stage)
    disk = registry.family(
        "cache_disk_entries", "gauge", "Persisted cache entries per stage",
    )
    for stage, count in sorted(cache.get("disk_entries", {}).items()):
        disk.add(count, stage=stage)

    for stage, snap in sorted(stats.get("stage_seconds", {}).items()):
        _add_histogram(
            registry, "stage_seconds",
            "Wall time of pipeline stages (seconds)",
            "stage", stage, snap,
        )
    for name, snap in sorted(stats.get("span_seconds", {}).items()):
        _add_histogram(
            registry, "span_seconds",
            "Wall time of trace spans (seconds)",
            "span", name, snap,
        )
    for name, snap in sorted(stats.get("bench_seconds", {}).items()):
        _add_histogram(
            registry, "bench_seconds",
            "Wall time of benchmark repetitions (seconds)",
            "bench", name, snap,
        )

    # Sliding-window view: per-op rates and quantiles over the last N
    # minutes (the lifetime histograms above never forget; these do).
    window_ops = (stats.get("window") or {}).get("ops", {})
    if window_ops:
        qps = registry.family(
            "window_qps", "gauge",
            "Requests per second over the sliding window, per op",
        )
        requests = registry.family(
            "window_requests", "gauge",
            "Requests observed inside the sliding window, per op",
        )
        error_rate = registry.family(
            "window_error_rate", "gauge",
            "Error fraction over the sliding window, per op",
        )
        degraded_rate = registry.family(
            "window_degraded_rate", "gauge",
            "Labeled-degraded fraction over the sliding window, per op",
        )
        window_q = registry.family(
            "window_seconds_quantile", "gauge",
            "Sketch-derived latency quantiles over the sliding window",
        )
        for op, entry in sorted(window_ops.items()):
            full = entry.get("full", {})
            qps.add(full.get("qps", 0.0), op=op)
            requests.add(full.get("count", 0), op=op)
            error_rate.add(full.get("error_rate", 0.0), op=op)
            degraded_rate.add(full.get("degraded_rate", 0.0), op=op)
            quantiles = full.get("quantiles") or {}
            for q_label, key in QUANTILE_KEYS:
                if quantiles.get(key) is not None:
                    window_q.add(
                        quantiles[key], op=op, quantile=q_label
                    )

    # Telemetry plumbing health: event-log and trace-sampler counters.
    telemetry = stats.get("telemetry") or {}
    events = telemetry.get("events") or {}
    if events:
        registry.family(
            "eventlog_events_total", "counter",
            "Events written to the structured event log",
        ).add(events.get("events_total", 0))
        registry.family(
            "eventlog_rotations_total", "counter",
            "Event-log segment rotations",
        ).add(events.get("rotations_total", 0))
        registry.family(
            "eventlog_bad_lines_total", "counter",
            "Corrupt or truncated event-log lines skipped on read",
        ).add(events.get("bad_lines_total", 0))
    sampler = telemetry.get("sampler") or {}
    if sampler:
        registry.family(
            "trace_kept_total", "counter",
            "Traces retained by the tail sampler",
        ).add(sampler.get("kept_total", 0))
        registry.family(
            "trace_dropped_total", "counter",
            "Traces discarded by the tail sampler",
        ).add(sampler.get("dropped_total", 0))
        reasons = registry.family(
            "trace_kept_by_reason_total", "counter",
            "Traces retained by the tail sampler, per retention reason",
        )
        for reason, count in sorted(
            (sampler.get("kept_by_reason") or {}).items()
        ):
            reasons.add(count, reason=reason)

    gauges = registry.family("gauge", "gauge", "Service gauges")
    for name, value in sorted(stats.get("gauges", {}).items()):
        gauges.add(value, name=name)

    pool = stats.get("pool", {})
    if pool:
        registry.family(
            "pool_degradations_total", "counter",
            "Worker pool degradations (process -> thread -> serial)",
        ).add(pool.get("degradations", 0))
        active = registry.family(
            "pool_active_kind", "gauge",
            "1 for the worker pool kind currently active",
        )
        for kind in ("process", "thread", "serial"):
            active.add(
                1 if pool.get("active_kind") == kind else 0, kind=kind
            )
        if pool.get("max_workers") is not None:
            registry.family(
                "pool_max_workers", "gauge",
                "Configured worker count",
            ).add(pool["max_workers"])

    # Circuit breakers (worker pool + cache disk), when present.
    breakers = []
    if pool.get("breaker"):
        breakers.append(pool["breaker"])
    if cache.get("breaker"):
        breakers.append(cache["breaker"])
    if breakers:
        state = registry.family(
            "breaker_state", "gauge",
            "Circuit breaker state (0 closed, 0.5 half-open, 1 open)",
        )
        opens = registry.family(
            "breaker_opens_total", "counter",
            "Times each circuit breaker tripped open",
        )
        rejections = registry.family(
            "breaker_rejections_total", "counter",
            "Calls rejected by an open circuit breaker",
        )
        state_value = {"closed": 0.0, "half-open": 0.5, "open": 1.0}
        for breaker in breakers:
            name = breaker.get("name", "")
            state.add(
                state_value.get(breaker.get("state"), 0.0), breaker=name
            )
            opens.add(breaker.get("opens_total", 0), breaker=name)
            rejections.add(
                breaker.get("rejections_total", 0), breaker=name
            )
    if cache.get("quarantined_total") is not None:
        registry.family(
            "cache_quarantined_total", "counter",
            "Corrupt cache entries moved aside (self-healing)",
        ).add(cache.get("quarantined_total", 0))

    # Admission control: queue, adaptive limiter, shed/brownout state.
    admission = stats.get("admission") or {}
    if admission:
        limiter = admission.get("limiter") or {}
        registry.family(
            "admission_in_flight", "gauge",
            "Requests currently admitted and executing",
        ).add(admission.get("in_flight", 0))
        registry.family(
            "admission_queue_depth", "gauge",
            "Requests waiting in the bounded admission queue",
        ).add(admission.get("queue_depth", 0))
        registry.family(
            "admission_limit", "gauge",
            "Current AIMD concurrency limit",
        ).add(limiter.get("limit", 0))
        registry.family(
            "admission_usable_limit", "gauge",
            "Concurrency limit minus live zombie workers",
        ).add(limiter.get("usable", 0))
        registry.family(
            "admission_zombie_workers", "gauge",
            "Timed-out worker threads still burning a core "
            "(uncancellable futures)",
        ).add(limiter.get("zombies", 0))
        registry.family(
            "admission_draining", "gauge",
            "1 while the service refuses new work to drain",
        ).add(1 if admission.get("draining") else 0)
        registry.family(
            "admission_brownout", "gauge",
            "1 while admitted requests run with a clamped "
            "(labeled-degraded) budget",
        ).add(1 if admission.get("brownout") else 0)
        shed = registry.family(
            "admission_shed_total", "counter",
            "Requests shed with a typed overloaded error, by reason",
        )
        counters = admission.get("counters") or {}
        for reason, key in (
            ("deadline", "shed_deadline"),
            ("queue-full", "shed_queue_full"),
            ("wait-timeout", "shed_wait_timeout"),
        ):
            shed.add(counters.get(key, 0), reason=reason)
        registry.family(
            "admission_rejected_draining_total", "counter",
            "Requests refused with a typed shutting-down error",
        ).add(counters.get("rejected_draining", 0))
        registry.family(
            "admission_brownout_admitted_total", "counter",
            "Requests admitted under brownout (clamped budget)",
        ).add(counters.get("brownout_admitted", 0))
        changes = registry.family(
            "admission_limit_changes_total", "counter",
            "AIMD limit adjustments, by direction",
        )
        changes.add(limiter.get("increases_total", 0),
                    direction="increase")
        changes.add(limiter.get("decreases_total", 0),
                    direction="decrease")

    return registry.render()


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, labels): value}``.

    A deliberately strict reference parser: any non-comment, non-blank
    line that does not match the exposition grammar raises
    ``ValueError``.  Used by tests and the CI smoke job.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _METRIC_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable {line!r}")
        labels: List[Tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            labels = [(k, v) for k, v in _LABEL_RE.findall(raw)]
        value_txt = match.group("value")
        if value_txt == "NaN":
            value = float("nan")
        elif value_txt in ("+Inf", "-Inf"):
            value = float(value_txt.replace("Inf", "inf"))
        else:
            value = float(value_txt)
        out[(match.group("name"), tuple(labels))] = value
    return out
