"""Pipeline-wide tracing: hierarchical wall-time spans under one trace ID.

The framework is a four-step compiler pipeline whose cost is dominated by
search-space sizes and ILP solve behaviour; this module makes that
visible.  A *trace* is a tree of *spans* (named wall-time intervals with
attributes and structured events) identified by a shared trace ID.

Design constraints, in order:

- **zero effect on results** — instrumentation only observes values;
  with no active tracer every hook is a no-op costing one ContextVar
  read, and pipeline outputs are bitwise-identical either way;
- **propagation across the worker pool** — per-phase estimation jobs run
  in subprocess, thread, or serial mode (see :mod:`repro.service.pool`);
  :func:`run_traced_job` carries the trace ID and parent span ID into
  the worker, collects spans in a private :class:`Tracer`, and ships
  them back with the job's return value so all three pool kinds report
  into one trace;
- **thread isolation** — the active tracer and span stack live in
  :mod:`contextvars`, so concurrent server requests trace independently
  and a tracer never leaks into an unrelated thread.

Span IDs are hierarchical strings: the main tracer issues ``"1"``,
``"2"``, ...; worker-side tracers prefix theirs (``"w0-2.1"``) so merged
traces never collide.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: identifies the JSON trace format (see :mod:`repro.obs.events`)
TRACE_SCHEMA = "repro.obs/trace/v1"


class _NullSpan:
    """The do-nothing span handed out when tracing is disabled."""

    __slots__ = ()
    span_id = None

    def set_attr(self, name: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


@dataclass
class SpanRecord:
    """One span: a named wall-time interval with attributes and events.

    ``start_us`` is epoch microseconds, but it is *derived*: the tracer
    samples the wall clock exactly once at creation and every span start
    is that anchor plus a ``perf_counter`` offset, so a wall-clock
    adjustment mid-trace can never reorder spans or produce negative
    child offsets.
    """

    span_id: str
    parent_id: Optional[str]
    name: str
    start_us: int  # epoch anchor + perf_counter offset, microseconds
    duration_us: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: perf_counter at start; internal, never serialized
    _t0: float = field(default=0.0, repr=False, compare=False)

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def add_event(self, name: str, /, **attrs: Any) -> None:
        self.events.append({"name": name, "attrs": attrs})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": self.attrs,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start_us=int(data["start_us"]),
            duration_us=int(data.get("duration_us", 0)),
            attrs=dict(data.get("attrs", {})),
            events=list(data.get("events", [])),
        )


class Tracer:
    """Collects the spans of one trace (thread-safe)."""

    def __init__(
        self,
        name: str = "trace",
        trace_id: Optional[str] = None,
        root_parent_id: Optional[str] = None,
        id_prefix: str = "",
        detail: bool = True,
    ):
        self.name = name
        #: record high-volume detail events (per-candidate estimates)?
        #: Explicit ``--trace`` exports want them; always-on production
        #: tracers pass ``detail=False`` so the per-request overhead
        #: stays within the tail-sampling budget.
        self.detail = detail
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        #: parent assigned to top-level spans (set for worker-side
        #: tracers so their spans nest under the dispatching span)
        self.root_parent_id = root_parent_id
        # Epoch anchor: the wall clock is read exactly once, here.  All
        # span start times are this anchor plus a monotonic
        # perf_counter offset, so they share one consistent timeline
        # even if the system clock steps mid-trace.
        self.created_us = int(time.time() * 1e6)
        self._epoch_pc = time.perf_counter()
        self._id_prefix = id_prefix
        self._counter = itertools.count(1)
        self._prefix_counter = itertools.count(0)
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._events: List[Dict[str, Any]] = []  # trace-level events

    # -- span lifecycle --------------------------------------------------

    def begin(self, name: str, parent_id: Optional[str],
              attrs: Dict[str, Any]) -> SpanRecord:
        # Lock-free: itertools.count.__next__ is atomic under the GIL,
        # and this path runs once per span in always-on production
        # tracing, so it must stay as close to free as possible.
        span_id = f"{self._id_prefix}{next(self._counter):x}"
        t0 = time.perf_counter()
        return SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_us=self.created_us + max(
                int((t0 - self._epoch_pc) * 1e6), 0
            ),
            attrs=dict(attrs),
            _t0=t0,
        )

    def finish(self, record: SpanRecord) -> None:
        record.duration_us = max(
            int((time.perf_counter() - record._t0) * 1e6), 0
        )
        # list.append is atomic under the GIL; readers copy under the
        # lock, which is safe against concurrent appends.
        self._spans.append(record)

    def add_trace_event(self, name: str, attrs: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append({"name": name, "attrs": attrs})

    def merge(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Fold spans recorded elsewhere (a worker) into this trace."""
        records = [SpanRecord.from_dict(d) for d in span_dicts]
        with self._lock:
            self._spans.extend(records)

    def new_prefix(self) -> str:
        """A fresh span-ID prefix for one worker fan-out (collision-free
        against this tracer's own IDs and previous fan-outs)."""
        with self._lock:
            return f"w{next(self._prefix_counter)}-"

    # -- reading ---------------------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            spans = sorted(self._spans, key=lambda s: (s.start_us, s.span_id))
            return {
                "schema": TRACE_SCHEMA,
                "trace_id": self.trace_id,
                "name": self.name,
                "created_us": self.created_us,
                "spans": [s.to_dict() for s in spans],
                "events": list(self._events),
            }

    def durations_by_name(self) -> Dict[str, List[float]]:
        """Span durations in seconds, grouped by span name (the feed for
        the service's span-aggregate histograms)."""
        out: Dict[str, List[float]] = {}
        with self._lock:
            for record in self._spans:
                out.setdefault(record.name, []).append(
                    record.duration_us / 1e6
                )
        return out


# ---------------------------------------------------------------------------
# Ambient tracer state.  ContextVars: fresh threads start empty, so a
# tracer never bleeds across server requests or into pool worker threads
# (workers receive the trace explicitly via run_traced_job).

_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)
_STACK: ContextVar[Tuple[SpanRecord, ...]] = ContextVar(
    "repro_obs_stack", default=()
)


def active() -> bool:
    """Is a tracer active in this context?  Use to guard event payloads
    that are expensive to build."""
    return _TRACER.get() is not None


def detail_active() -> bool:
    """Is a *detail* tracer active?  Guards high-volume per-item events
    (one per estimation candidate) that explicit ``--trace`` exports
    want but always-on production tracing must not pay for."""
    tracer = _TRACER.get()
    return tracer is not None and tracer.detail


def active_tracer() -> Optional[Tracer]:
    return _TRACER.get()


def current_span_id() -> Optional[str]:
    stack = _STACK.get()
    return stack[-1].span_id if stack else None


@contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make ``tracer`` the ambient tracer (with an empty span stack) for
    the duration of the block.  Used to carry a request's tracer into
    worker threads and pool jobs where ContextVars do not propagate."""
    tracer_token = _TRACER.set(tracer)
    stack_token = _STACK.set(())
    try:
        yield tracer
    finally:
        _STACK.reset(stack_token)
        _TRACER.reset(tracer_token)


def start_trace(name: str = "repro") -> Tracer:
    """Start collecting spans in this context; returns the tracer."""
    tracer = Tracer(name=name)
    _TRACER.set(tracer)
    _STACK.set(())
    return tracer


def finish_trace() -> Dict[str, Any]:
    """Stop the ambient trace and return its serialized form."""
    tracer = _TRACER.get()
    if tracer is None:
        raise RuntimeError("finish_trace() without start_trace()")
    _TRACER.set(None)
    _STACK.set(())
    return tracer.to_dict()


class _SpanScope:
    """The context manager :func:`span` returns — a plain class rather
    than a ``@contextmanager`` generator because this is the hottest
    instrumentation path under always-on tracing, and the generator
    protocol roughly doubles its cost."""

    __slots__ = ("_name", "_attrs", "_tracer", "_record", "_token")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self._name = name
        self._attrs = attrs
        self._tracer: Optional[Tracer] = None
        self._record: Optional[SpanRecord] = None
        self._token = None

    def __enter__(self):
        tracer = _TRACER.get()
        if tracer is None:
            return NULL_SPAN
        stack = _STACK.get()
        parent = stack[-1].span_id if stack else tracer.root_parent_id
        record = tracer.begin(self._name, parent, self._attrs)
        self._tracer = tracer
        self._record = record
        self._token = _STACK.set(stack + (record,))
        return record

    def __exit__(self, *exc_info) -> bool:
        if self._record is not None:
            _STACK.reset(self._token)
            self._tracer.finish(self._record)
        return False


def span(name: str, /, **attrs: Any) -> _SpanScope:
    """Record a span around the block.  No-op when tracing is off.

    Yields a handle with ``set_attr(name, value)`` / ``add_event(name,
    **attrs)``; with tracing off the handle is :data:`NULL_SPAN`.
    """
    return _SpanScope(name, attrs)


def add_event(name: str, /, **attrs: Any) -> None:
    """Attach a structured event to the current span (or to the trace
    itself when no span is open).  No-op when tracing is off."""
    tracer = _TRACER.get()
    if tracer is None:
        return
    stack = _STACK.get()
    if stack:
        stack[-1].add_event(name, **attrs)
    else:
        tracer.add_trace_event(name, attrs)


# ---------------------------------------------------------------------------
# Worker-side propagation.  The pool replaces each job ``fn(*args)`` with
# ``run_traced_job(trace_id, parent_id, prefix, fn, args)``: module-level
# and built from picklable pieces, so it crosses the process boundary.


def run_traced_job(
    trace_id: str,
    parent_id: Optional[str],
    prefix: str,
    fn: Callable[..., Any],
    args: Tuple,
    detail: bool = True,
) -> Tuple[Any, List[Dict[str, Any]]]:
    """Run one pool job under a private tracer; return ``(value, spans)``.

    The worker-side tracer shares the dispatching trace's ID, roots its
    spans under the dispatching span, prefixes span IDs so the merged
    trace stays collision-free, and inherits the dispatcher's ``detail``
    flag.  Works identically in subprocess, thread, and serial
    (degraded) execution.
    """
    tracer = Tracer(
        name="job",
        trace_id=trace_id,
        root_parent_id=parent_id,
        id_prefix=prefix,
        detail=detail,
    )
    with activate(tracer):
        with span(f"job:{getattr(fn, '__name__', 'fn')}"):
            value = fn(*args)
    return value, [record.to_dict() for record in tracer.spans]
