"""Chrome trace-event exporter.

Converts a v1 trace (see :mod:`repro.obs.events`) into the Chrome
trace-event JSON format so a pipeline run can be opened directly in
``chrome://tracing`` / Perfetto.  Spans become complete (``"X"``)
events; span events become instants (``"i"``).

Track assignment: the main pipeline occupies thread lane 1; spans
recorded by worker-side tracers (span IDs carrying a ``w<N>-`` fan-out
prefix, see :class:`repro.obs.tracing.Tracer`) each get a stable lane of
their own, so parallel estimation jobs render side by side.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

#: pid used for every event (one process tree per trace)
_PID = 1
#: tid of the main pipeline lane
_MAIN_TID = 1


def _lane_of(span_id: str, lanes: Dict[str, int]) -> int:
    """Map a span ID to a Chrome thread lane via its fan-out prefix."""
    head, sep, _rest = span_id.partition(".")
    if not sep or not head.startswith("w"):
        return _MAIN_TID
    return lanes.setdefault(head, len(lanes) + _MAIN_TID + 1)


def to_chrome_trace(trace: Mapping[str, Any]) -> Dict[str, Any]:
    """Render a v1 trace as a Chrome trace-event object."""
    lanes: Dict[str, int] = {}
    events: List[Dict[str, Any]] = [{
        "ph": "M",
        "pid": _PID,
        "tid": _MAIN_TID,
        "name": "process_name",
        "args": {"name": f"repro {trace.get('name', 'trace')} "
                         f"[{trace.get('trace_id', '?')}]"},
    }]
    for span in trace.get("spans", []):
        tid = _lane_of(span["span_id"], lanes)
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append({
            "ph": "X",
            "pid": _PID,
            "tid": tid,
            "name": span["name"],
            "cat": "repro",
            "ts": span["start_us"],
            "dur": max(span["duration_us"], 1),
            "args": args,
        })
        for event in span.get("events", []):
            events.append({
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": tid,
                "name": event["name"],
                "cat": "repro",
                "ts": span["start_us"],
                "args": dict(event.get("attrs", {})),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": trace.get("schema"),
            "trace_id": trace.get("trace_id"),
        },
    }


def validate_chrome_trace(chrome: Mapping[str, Any]) -> None:
    """Light structural check of an exported Chrome trace (used by the
    CI smoke job alongside the v1 validator)."""
    events = chrome.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("chrome trace: traceEvents must be a "
                         "non-empty list")
    for i, event in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"chrome trace: event {i} missing {key!r}")
        if event["ph"] == "X" and ("ts" not in event or "dur" not in event):
            raise ValueError(f"chrome trace: event {i} lacks ts/dur")
    json.dumps(chrome)  # must be serializable as-is


def write_chrome_trace(trace: Mapping[str, Any], path: str) -> None:
    """Convert, validate, and write a Chrome trace file."""
    chrome = to_chrome_trace(trace)
    validate_chrome_trace(chrome)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome, handle, indent=2, sort_keys=True)
        handle.write("\n")
