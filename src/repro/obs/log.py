"""Logging for server and CLI status output.

Everything user-facing that is *status* (not a computed result) goes
through the ``repro`` logger hierarchy instead of bare ``print``, so a
``--log-level`` flag controls verbosity and service operators get
timestamped, levelled lines on stderr.  Computed results (reports,
JSON responses, Prometheus text) stay on stdout via ``print``.

Every record is stamped with the active trace context
(:class:`TraceContextFilter`): when a tracer is live in the emitting
context the line carries ``[trace_id/span_id]``, so log lines join
against sampled span trees and event-log entries; outside any trace
the field renders as ``-`` and lines look as before.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: accepted --log-level values
LOG_LEVELS = ("debug", "info", "warning", "error")

_FORMAT = "%(asctime)s %(name)s %(levelname)s [%(trace)s] %(message)s"


class TraceContextFilter(logging.Filter):
    """Attach ``trace_id``/``span_id``/``trace`` fields to every record
    from the active tracing context (``-`` when no trace is live)."""

    def filter(self, record: logging.LogRecord) -> bool:
        from . import tracing

        tracer = tracing.active_tracer()
        if tracer is None:
            record.trace_id = ""
            record.span_id = ""
            record.trace = "-"
        else:
            record.trace_id = tracer.trace_id
            span_id = tracing.current_span_id()
            record.span_id = span_id or ""
            record.trace = (
                f"{tracer.trace_id}/{span_id}" if span_id
                else tracer.trace_id
            )
        return True


def get_logger(name: str = "repro") -> logging.Logger:
    """The named logger under the ``repro`` hierarchy."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "info", stream: Optional[TextIO] = None
) -> logging.Logger:
    """Install one stderr handler on the ``repro`` root logger.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers (the CLI may be invoked many times in one process, e.g.
    from tests).
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"log level must be one of {LOG_LEVELS}, got {level!r}"
        )
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    if not root.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        # On the handler, not the logger: logger-level filters do not
        # apply to records propagated up from child loggers.
        handler.addFilter(TraceContextFilter())
        root.addHandler(handler)
    elif stream is not None:
        for handler in root.handlers:
            if isinstance(handler, logging.StreamHandler):
                handler.setStream(stream)
    return root
