"""The SLO engine: declarative objectives, error budgets, burn rates.

The paper frames the layout tool as an *interactive assistant* — its
value depends on predictable response time.  This module makes that a
checkable contract.  An **objective** declares a bound on one windowed
metric of one operation::

    {"name": "analyze-latency", "op": "analyze",
     "metric": "p99", "threshold_s": 0.25}
    {"name": "analyze-errors", "op": "analyze",
     "metric": "error_rate", "threshold": 0.01}

Latency objectives are *compliance* objectives: ``p99 < 250ms`` means
"at least 99% of requests complete within 250ms", so its **error
budget** is the 1% of requests allowed over the threshold.  Rate
objectives (``error_rate``, ``degraded_rate``) budget the rate bound
itself.  From the sliding windows of :mod:`repro.obs.window` the engine
computes, per objective:

- ``bad_fraction``     — the fraction of requests that spent budget;
- ``budget_remaining`` — ``1 - bad_fraction / budget`` over the full
  window (1.0 = untouched, 0.0 = exactly spent, negative = violated);
- **burn rates**       — ``bad_fraction / budget`` over a *fast* window
  (default 60s) and the *full* window.  Burn rate 1.0 spends the budget
  exactly as fast as allowed; the classic multiwindow alert rules fire
  ``fast_burn`` when both windows burn >= 14.4x (budget gone within
  ~1/14th of the period — page someone) and ``slow_burn`` when the full
  window burns >= 3x (trending toward violation — file a ticket).
  Requiring the *fast* window too keeps a long-past incident from
  paging after recovery.

An objective is **violated** when the full window's bad fraction
exceeds its budget — for latency objectives this is exactly "the
windowed quantile is over the threshold".  Empty windows are
``no-data`` and do not fail ``repro slo check`` (a healthy idle service
is not an outage); pass ``require_data=True`` to treat them as
failures in smoke tests.

Inputs come from a live service (the ``slo`` protocol op / ``stats``
window section) or offline from an event log via
:func:`window_from_events` — the same math either way.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .window import (
    DEFAULT_BUCKET_COUNT,
    DEFAULT_BUCKET_S,
    DEFAULT_FAST_S,
    LogBucketSketch,
    WindowedOpStats,
)

#: identifies the objectives-file format
SLO_SCHEMA = "repro.obs/slo/v1"

#: metrics an objective may bound
QUANTILE_METRICS = ("p50", "p95", "p99")
RATE_METRICS = ("error_rate", "degraded_rate")
METRICS = QUANTILE_METRICS + RATE_METRICS

#: compliance target implied by each quantile metric (p99 -> 0.99)
_QUANTILE_TARGET = {"p50": 0.50, "p95": 0.95, "p99": 0.99}

#: default multiwindow burn-rate alert thresholds (Google SRE workbook
#: scaling, adapted to the in-memory window)
FAST_BURN = 14.4
SLOW_BURN = 3.0


class SLOValidationError(ValueError):
    """An objectives file or objective dict is malformed."""


@dataclass(frozen=True)
class Objective:
    """One declarative objective over one op's sliding window."""

    name: str
    op: str = "analyze"
    metric: str = "p99"
    #: latency bound in seconds (quantile metrics only)
    threshold_s: Optional[float] = None
    #: rate bound in [0, 1] (rate metrics only)
    threshold: Optional[float] = None

    @property
    def budget(self) -> float:
        """The allowed bad fraction (error budget) of this objective."""
        if self.metric in _QUANTILE_TARGET:
            return 1.0 - _QUANTILE_TARGET[self.metric]
        return float(self.threshold)

    def describe(self) -> str:
        if self.metric in QUANTILE_METRICS:
            return (f"{self.op} {self.metric} < "
                    f"{self.threshold_s * 1e3:g}ms")
        return f"{self.op} {self.metric} < {self.threshold * 100:g}%"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name, "op": self.op, "metric": self.metric,
        }
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        if self.threshold is not None:
            out["threshold"] = self.threshold
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Objective":
        if not isinstance(data, Mapping):
            raise SLOValidationError("objective is not an object")
        unknown = set(data) - {"name", "op", "metric", "threshold_s",
                               "threshold"}
        if unknown:
            raise SLOValidationError(
                f"unknown objective fields: {sorted(unknown)}"
            )
        metric = data.get("metric", "p99")
        if metric not in METRICS:
            raise SLOValidationError(
                f"metric must be one of {METRICS}, got {metric!r}"
            )
        threshold_s = data.get("threshold_s")
        threshold = data.get("threshold")
        if metric in QUANTILE_METRICS:
            if threshold_s is None:
                raise SLOValidationError(
                    f"quantile objective needs 'threshold_s' (seconds)"
                )
            threshold_s = float(threshold_s)
            if threshold_s <= 0:
                raise SLOValidationError(
                    f"threshold_s must be > 0, got {threshold_s}"
                )
            threshold = None
        else:
            if threshold is None:
                raise SLOValidationError(
                    f"rate objective needs 'threshold' (a fraction)"
                )
            threshold = float(threshold)
            if not 0.0 < threshold < 1.0:
                raise SLOValidationError(
                    f"threshold must be in (0, 1), got {threshold}"
                )
            threshold_s = None
        name = data.get("name") or ""
        if not name:
            op = data.get("op", "analyze")
            name = f"{op}-{metric}"
        return cls(
            name=str(name),
            op=str(data.get("op", "analyze")),
            metric=metric,
            threshold_s=threshold_s,
            threshold=threshold,
        )


def load_objectives(path: str) -> List[Objective]:
    """Parse an objectives file (JSON, ``SLO_SCHEMA``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SLOValidationError(f"cannot read {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SLOValidationError(f"{path!r}: bad JSON: {exc}") from None
    if not isinstance(data, Mapping) or data.get("schema") != SLO_SCHEMA:
        raise SLOValidationError(
            f"{path!r}: top-level 'schema' must be {SLO_SCHEMA!r}"
        )
    raw = data.get("objectives")
    if not isinstance(raw, list) or not raw:
        raise SLOValidationError(
            f"{path!r}: 'objectives' must be a non-empty list"
        )
    objectives = [Objective.from_dict(entry) for entry in raw]
    names = [o.name for o in objectives]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SLOValidationError(
            f"{path!r}: duplicate objective names: {dupes}"
        )
    return objectives


# ---------------------------------------------------------------------------
# Evaluation.


@dataclass
class ObjectiveResult:
    """The verdict of one objective over one window snapshot."""

    objective: Objective
    status: str  # "ok" | "violated" | "no-data"
    measured: Optional[float] = None  # windowed quantile or rate
    count: int = 0
    bad_fraction: float = 0.0
    budget_remaining: float = 1.0
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    alerts: List[str] = field(default_factory=list)

    @property
    def violated(self) -> bool:
        return self.status == "violated"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.objective.to_dict(),
            "describe": self.objective.describe(),
            "status": self.status,
            "measured": self.measured,
            "count": self.count,
            "bad_fraction": self.bad_fraction,
            "budget_remaining": self.budget_remaining,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "alerts": list(self.alerts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObjectiveResult":
        measured = data.get("measured")
        return cls(
            objective=Objective.from_dict(data.get("objective", {})),
            status=str(data.get("status", "no-data")),
            measured=(float(measured) if measured is not None else None),
            count=int(data.get("count", 0)),
            bad_fraction=float(data.get("bad_fraction", 0.0)),
            budget_remaining=float(data.get("budget_remaining", 1.0)),
            burn_fast=float(data.get("burn_fast", 0.0)),
            burn_slow=float(data.get("burn_slow", 0.0)),
            alerts=[str(a) for a in data.get("alerts", [])],
        )


@dataclass
class SLOReport:
    """All objective verdicts of one evaluation."""

    results: List[ObjectiveResult] = field(default_factory=list)
    window_s: float = 0.0
    fast_s: float = DEFAULT_FAST_S

    @property
    def ok(self) -> bool:
        return not any(r.violated for r in self.results)

    def violations(self) -> List[ObjectiveResult]:
        return [r for r in self.results if r.violated]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.obs/slo-report/v1",
            "ok": self.ok,
            "window_s": self.window_s,
            "fast_s": self.fast_s,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOReport":
        """Rebuild a report from its wire form (the ``slo`` protocol
        op returns ``to_dict()``), so remote and local evaluations
        format and exit identically."""
        if not isinstance(data, Mapping):
            raise SLOValidationError("SLO report is not an object")
        return cls(
            results=[
                ObjectiveResult.from_dict(r)
                for r in data.get("results", [])
            ],
            window_s=float(data.get("window_s", 0.0)),
            fast_s=float(data.get("fast_s", DEFAULT_FAST_S)),
        )


def _window_entry(
    windows: Mapping[str, Any], op: str, horizon: str
) -> Optional[Mapping[str, Any]]:
    entry = windows.get("ops", {}).get(op)
    if entry is None:
        return None
    return entry.get(horizon)


def _bad_fraction(
    objective: Objective, view: Mapping[str, Any]
) -> Tuple[int, float, Optional[float]]:
    """``(count, bad_fraction, measured)`` of one window view."""
    count = int(view.get("count", 0))
    if count == 0:
        return 0, 0.0, None
    if objective.metric in QUANTILE_METRICS:
        sketch_dict = view.get("sketch")
        measured = (view.get("quantiles") or {}).get(objective.metric)
        if sketch_dict is None:
            # Quantile-only fallback (no sketch shipped): binary
            # verdict from the reported quantile.
            bad = 0.0 if (measured is None
                          or measured <= objective.threshold_s) else (
                objective.budget * 2.0
            )
            return count, bad, measured
        sketch = LogBucketSketch.from_dict(sketch_dict)
        good = sketch.count_le(objective.threshold_s)
        return count, 1.0 - good / count, measured
    rate = float(view.get(objective.metric, 0.0))
    return count, rate, rate


def evaluate_objectives(
    objectives: Sequence[Objective],
    windows: Mapping[str, Any],
    require_data: bool = False,
    fast_burn: float = FAST_BURN,
    slow_burn: float = SLOW_BURN,
) -> SLOReport:
    """Evaluate objectives against one window snapshot (the service
    stats ``window`` section: ``{"window_s": ..., "fast_s": ...,
    "ops": {op: {"full": {...}, "fast": {...}}}}``)."""
    report = SLOReport(
        window_s=float(windows.get("window_s", 0.0)),
        fast_s=float(windows.get("fast_s", DEFAULT_FAST_S)),
    )
    for objective in objectives:
        full = _window_entry(windows, objective.op, "full")
        fast = _window_entry(windows, objective.op, "fast")
        if full is None or int(full.get("count", 0)) == 0:
            status = "violated" if require_data else "no-data"
            result = ObjectiveResult(objective=objective, status=status)
            if require_data:
                result.alerts.append("no-data")
            report.results.append(result)
            continue
        budget = objective.budget
        count, bad_full, measured = _bad_fraction(objective, full)
        _, bad_fast, _ = _bad_fraction(objective, fast or full)
        burn_slow_x = bad_full / budget if budget > 0 else math.inf
        burn_fast_x = bad_fast / budget if budget > 0 else math.inf
        result = ObjectiveResult(
            objective=objective,
            status="violated" if bad_full > budget else "ok",
            measured=measured,
            count=count,
            bad_fraction=bad_full,
            budget_remaining=1.0 - burn_slow_x,
            burn_fast=burn_fast_x,
            burn_slow=burn_slow_x,
        )
        if burn_fast_x >= fast_burn and burn_slow_x >= fast_burn:
            result.alerts.append("fast-burn")
        elif burn_slow_x >= slow_burn:
            result.alerts.append("slow-burn")
        report.results.append(result)
    return report


# ---------------------------------------------------------------------------
# Offline evaluation: rebuild windows from a recorded event log.


def window_from_events(
    events: Sequence[Mapping[str, Any]],
    window_s: float = DEFAULT_BUCKET_S * DEFAULT_BUCKET_COUNT,
    fast_s: float = DEFAULT_FAST_S,
    now_us: Optional[int] = None,
    event_type: str = "service.request",
) -> Dict[str, Any]:
    """Replay ``service.request`` events into sliding windows anchored
    at the newest event (or ``now_us``), producing the same snapshot
    shape a live service serves — so ``repro slo check`` works on a
    dead service's log exactly as on a live one."""
    requests = [e for e in events if e.get("type") == event_type]
    if now_us is None:
        now_us = max(
            (int(e.get("ts_us", 0)) for e in requests), default=0
        )
    bucket_s = max(window_s / DEFAULT_BUCKET_COUNT, 1e-3)
    per_op: Dict[str, WindowedOpStats] = {}
    for event in requests:
        attrs = event.get("attrs", {})
        op = str(attrs.get("op", "analyze"))
        age_s = (now_us - int(event.get("ts_us", now_us))) / 1e6
        if age_s < 0 or age_s >= window_s:
            continue
        stats = per_op.get(op)
        if stats is None:
            # Pin the clock per observation: the ring places each event
            # by its own timestamp, then reads relative to "now".
            stats = per_op[op] = WindowedOpStats(
                bucket_s=bucket_s,
                buckets=DEFAULT_BUCKET_COUNT,
                clock=lambda: 0.0,
            )
        anchor = now_us / 1e6
        stats._clock = (lambda t=anchor - age_s: t)
        stats.observe(
            float(attrs.get("seconds", 0.0)),
            ok=bool(attrs.get("ok", True)),
            degraded=bool(attrs.get("degraded", False)),
        )
    ops: Dict[str, Any] = {}
    for op, stats in per_op.items():
        stats._clock = (lambda t=now_us / 1e6: t)
        ops[op] = {
            "full": stats.snapshot(),
            "fast": stats.snapshot(horizon_s=fast_s),
        }
    return {
        "window_s": window_s,
        "fast_s": fast_s,
        "bucket_s": bucket_s,
        "ops": ops,
    }


# ---------------------------------------------------------------------------
# Rendering.


def format_slo_report(report: SLOReport) -> str:
    """Human-readable verdict table."""
    lines = [
        f"SLO report over a {report.window_s:.0f}s window "
        f"(fast window {report.fast_s:.0f}s)",
    ]
    for result in report.results:
        objective = result.objective
        flag = {"ok": "OK  ", "violated": "FAIL", "no-data": "----"}[
            result.status
        ]
        if result.status == "no-data":
            detail = "no requests in window"
        elif result.measured is None:
            detail = f"over {result.count} requests"
        elif objective.metric in QUANTILE_METRICS:
            detail = (
                f"measured {result.measured * 1e3:8.2f}ms over "
                f"{result.count} requests"
            )
        else:
            detail = (
                f"measured {result.measured * 100:6.2f}% over "
                f"{result.count} requests"
            )
        lines.append(f"  [{flag}] {objective.describe():<32s} {detail}")
        if result.status != "no-data":
            burn = (
                f"         budget remaining {result.budget_remaining:+.2f}  "
                f"burn fast {result.burn_fast:.2f}x  "
                f"slow {result.burn_slow:.2f}x"
            )
            if result.alerts:
                burn += "  ALERT: " + ", ".join(result.alerts)
            lines.append(burn)
    lines.append(
        "all objectives met" if report.ok
        else f"{len(report.violations())} objective(s) VIOLATED"
    )
    return "\n".join(lines)
