"""Sliding-window latency statistics: compact mergeable sketches in a
time-bucketed ring.

The lifetime histograms in :mod:`repro.service.metrics` answer "what has
this process ever seen"; operators of a long-lived service need "what is
happening *now*".  This module provides that view with two pieces:

- :class:`LogBucketSketch` — a sparse geometric-bucket quantile sketch.
  Values land in bucket ``floor(log(v / MIN) / log(GAMMA))``, so any
  quantile estimate carries a bounded *relative* error of
  ``GAMMA - 1`` (~9%) regardless of scale — microsecond stage times and
  minute-long requests share one 100-slot structure.  Sketches with the
  same parameters merge by bucket-wise addition, which is exact: merging
  two sketches is indistinguishable from observing both value streams
  into one.
- :class:`WindowedOpStats` — a ring of ``buckets`` time slots of
  ``bucket_s`` seconds each (default 60 x 10s = a 10-minute window).
  Each slot holds one sketch plus ok/error/degraded counts; observing
  writes to the slot owning "now", reading merges every slot still
  inside the requested horizon.  Expiry is lazy: a slot is reused when
  the clock wraps onto it, so there is no background thread and the
  memory bound is fixed at construction.

Everything takes an injectable ``clock`` so tests can step time
deterministically, and every structure serializes to plain JSON dicts so
windows can travel over the service protocol (the ``slo`` op and
``repro top`` both read them remotely).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

#: serialization tag of one sketch dict
SKETCH_SCHEMA = "repro.obs/sketch/v1"

#: smallest resolvable value (1 microsecond); anything below it lands in
#: bucket 0 rather than underflowing the log
SKETCH_MIN = 1e-6

#: geometric bucket growth; relative quantile error is GAMMA - 1
SKETCH_GAMMA = 1.2

#: bucket index cap: SKETCH_MIN * GAMMA**SKETCH_BUCKETS ~ 8e2 seconds,
#: far past any request the service would ever answer
SKETCH_BUCKETS = 112

_LOG_GAMMA = math.log(SKETCH_GAMMA)


class LogBucketSketch:
    """A sparse geometric-bucket quantile sketch (not thread-safe; the
    owning window serializes access)."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @staticmethod
    def bucket_index(value: float) -> int:
        if value <= SKETCH_MIN:
            return 0
        index = int(math.log(value / SKETCH_MIN) / _LOG_GAMMA) + 1
        return min(index, SKETCH_BUCKETS)

    @staticmethod
    def bucket_upper(index: int) -> float:
        """The upper bound of bucket ``index`` (lower bound of 0 is 0)."""
        if index <= 0:
            return SKETCH_MIN
        return SKETCH_MIN * (SKETCH_GAMMA ** index)

    def observe(self, value: float) -> None:
        value = max(float(value), 0.0)
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "LogBucketSketch") -> None:
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        for name in ("min", "max"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if theirs is None:
                continue
            if mine is None:
                setattr(self, name, theirs)
            else:
                pick = min if name == "min" else max
                setattr(self, name, pick(mine, theirs))

    # -- reading ---------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Geometric-midpoint quantile estimate, clamped to observed
        min/max; ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = max(q * self.count, 1.0)
        cumulative = 0
        value: float = 0.0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= target:
                upper = self.bucket_upper(index)
                lower = self.bucket_upper(index - 1) if index > 0 else 0.0
                value = math.sqrt(upper * lower) if lower > 0 else upper
                break
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def count_le(self, threshold: float) -> int:
        """How many observed values were <= ``threshold`` (bucket
        resolution: the bucket containing the threshold counts in full
        when the threshold reaches its geometric midpoint)."""
        if self.count == 0 or threshold < 0:
            return 0
        if self.max is not None and threshold >= self.max:
            return self.count
        cut = self.bucket_index(threshold)
        total = 0
        for index, n in self.counts.items():
            if index < cut:
                total += n
            elif index == cut:
                upper = self.bucket_upper(index)
                lower = self.bucket_upper(index - 1) if index > 0 else 0.0
                mid = math.sqrt(upper * lower) if lower > 0 else upper
                if threshold >= mid:
                    total += n
        return total

    def quantiles(self) -> Dict[str, Optional[float]]:
        return {
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SKETCH_SCHEMA,
            "counts": {str(i): n for i, n in sorted(self.counts.items())},
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LogBucketSketch":
        if data.get("schema") != SKETCH_SCHEMA:
            raise ValueError(
                f"sketch schema must be {SKETCH_SCHEMA!r}, "
                f"got {data.get('schema')!r}"
            )
        sketch = cls()
        sketch.counts = {
            int(i): int(n) for i, n in data.get("counts", {}).items()
        }
        sketch.count = int(data.get("count", 0))
        sketch.total = float(data.get("sum", 0.0))
        sketch.min = data.get("min")
        sketch.max = data.get("max")
        return sketch


#: default ring geometry: 60 slots x 10 s = a 10-minute window
DEFAULT_BUCKET_S = 10.0
DEFAULT_BUCKET_COUNT = 60

#: default fast horizon for burn-rate style reads (seconds)
DEFAULT_FAST_S = 60.0


class _Slot:
    """One ring slot: the sketch plus outcome counters of one period."""

    __slots__ = ("period", "sketch", "ok", "errors", "degraded")

    def __init__(self, period: int = -1):
        self.reset(period)

    def reset(self, period: int) -> None:
        self.period = period
        self.sketch = LogBucketSketch()
        self.ok = 0
        self.errors = 0
        self.degraded = 0


class WindowedOpStats:
    """Sliding-window stats of one operation (thread-safe)."""

    def __init__(
        self,
        bucket_s: float = DEFAULT_BUCKET_S,
        buckets: int = DEFAULT_BUCKET_COUNT,
        clock: Callable[[], float] = time.monotonic,
    ):
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be > 0, got {bucket_s}")
        if buckets < 2:
            raise ValueError(f"need >= 2 buckets, got {buckets}")
        self.bucket_s = float(bucket_s)
        self.buckets = int(buckets)
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: List[_Slot] = [_Slot() for _ in range(self.buckets)]

    @property
    def window_s(self) -> float:
        return self.bucket_s * self.buckets

    def _slot_locked(self) -> _Slot:
        period = int(self._clock() // self.bucket_s)
        slot = self._ring[period % self.buckets]
        if slot.period != period:
            slot.reset(period)
        return slot

    def observe(self, seconds: float, ok: bool = True,
                degraded: bool = False) -> None:
        with self._lock:
            slot = self._slot_locked()
            slot.sketch.observe(seconds)
            if ok:
                slot.ok += 1
            else:
                slot.errors += 1
            if degraded:
                slot.degraded += 1

    def merged(
        self, horizon_s: Optional[float] = None
    ) -> Tuple[LogBucketSketch, int, int, float]:
        """Merge every live slot within ``horizon_s`` of now; returns
        ``(sketch, errors, degraded, covered_s)`` where ``covered_s`` is
        the horizon actually spanned (for rate denominators)."""
        horizon = self.window_s if horizon_s is None else min(
            float(horizon_s), self.window_s
        )
        merged = LogBucketSketch()
        errors = degraded = 0
        with self._lock:
            now_period = int(self._clock() // self.bucket_s)
            periods = max(int(math.ceil(horizon / self.bucket_s)), 1)
            for slot in self._ring:
                if slot.period < 0:
                    continue
                # The current period is still filling; count it and the
                # periods - 1 completed ones before it.
                if now_period - slot.period < periods:
                    merged.merge(slot.sketch)
                    errors += slot.errors
                    degraded += slot.degraded
        return merged, errors, degraded, periods * self.bucket_s

    def snapshot(
        self, horizon_s: Optional[float] = None, sketch: bool = True
    ) -> Dict[str, Any]:
        """One JSON-safe window view: counts, rates, quantiles, and
        (unless disabled) the merged sketch for downstream SLO math."""
        merged, errors, degraded, covered = self.merged(horizon_s)
        count = merged.count
        out: Dict[str, Any] = {
            "horizon_s": covered,
            "count": count,
            "errors": errors,
            "degraded": degraded,
            "qps": count / covered if covered > 0 else 0.0,
            "error_rate": errors / count if count else 0.0,
            "degraded_rate": degraded / count if count else 0.0,
            "mean_s": merged.mean,
            "quantiles": merged.quantiles(),
        }
        if sketch:
            out["sketch"] = merged.to_dict()
        return out
