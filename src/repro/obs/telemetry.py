"""The durable telemetry event log: append-only NDJSON, always on.

Traces (:mod:`repro.obs.tracing`) answer "what happened inside this one
request"; the *event log* answers "what has this service been doing" —
a durable, replayable record of every operationally interesting moment:
service requests, degradations, circuit-breaker transitions, cache
quarantines, deadline expiries, injected faults, sampled traces, chaos
case verdicts.

Format: one JSON object per line (NDJSON), so the log can be appended
to forever, tailed with standard tools, and survive a crash mid-write —
a torn final line is *data loss of one event*, never a reader crash.
Each event::

    {"schema": "repro.obs/event/v1", "seq": 17,
     "ts_us": 1730000000000000, "type": "service.request",
     "attrs": {...}, "trace_id": "4f2a...", "span_id": "3"}

``trace_id``/``span_id`` are attached automatically when a trace is
active in the emitting context, so event-log lines join against sampled
span trees.

Durability and bounds:

- every line is flushed (and, by default, fsync'd) as written;
- when the current file exceeds ``max_bytes`` it is atomically renamed
  to ``events-<NNNNNN>.ndjson`` (``os.replace``, the same primitive as
  :mod:`repro.resilience.atomic`) and a fresh file starts; only the
  newest ``max_files`` rotated segments are kept;
- :func:`read_event_log` skips unparseable or schema-invalid lines and
  *counts* them (exposed as ``repro_eventlog_bad_lines_total``) — a
  corrupt log can cost events, never a crash or a wrong report.

Deep modules (circuit breaker, degradation accounting, fault injector,
cache quarantine) cannot see the service's log instance, so they emit
through the module-level *sink registry*: :func:`emit` costs one global
read when nothing is installed, mirroring the fault-point and tracing
no-op conventions.
"""

from __future__ import annotations

import io
import json
import os
import re
import threading
import time
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from . import tracing

#: identifies the NDJSON event format
EVENT_SCHEMA = "repro.obs/event/v1"

#: the live (append-target) segment name
CURRENT_SEGMENT = "events.ndjson"

#: rotated segment names: events-000001.ndjson, ...
_SEGMENT_RE = re.compile(r"^events-(\d{6})\.ndjson$")

#: rotation defaults: 4 MiB live segment, 4 rotated segments kept
DEFAULT_MAX_BYTES = 4 << 20
DEFAULT_MAX_FILES = 4

#: events kept in the in-memory tail ring (the ``events`` protocol op
#: and ``repro top`` read these without touching disk)
DEFAULT_TAIL_EVENTS = 512


class EventValidationError(ValueError):
    """An event object does not conform to the v1 schema."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise EventValidationError(message)


def validate_event(event: Any) -> None:
    """Raise :class:`EventValidationError` unless ``event`` is a valid
    v1 event object."""
    _check(isinstance(event, Mapping), "event is not an object")
    _check(
        event.get("schema") == EVENT_SCHEMA,
        f"schema must be {EVENT_SCHEMA!r}, got {event.get('schema')!r}",
    )
    _check(
        isinstance(event.get("type"), str) and event["type"],
        "type must be a non-empty string",
    )
    for key in ("seq", "ts_us"):
        value = event.get(key)
        _check(
            isinstance(value, int) and not isinstance(value, bool)
            and value >= 0,
            f"{key} must be a non-negative integer",
        )
    attrs = event.get("attrs", {})
    _check(isinstance(attrs, Mapping), "attrs must be an object")
    try:
        json.dumps(attrs)
    except (TypeError, ValueError) as exc:
        raise EventValidationError(
            f"attrs not JSON-serializable: {exc}"
        ) from None
    for key in ("trace_id", "span_id"):
        value = event.get(key)
        _check(
            value is None or (isinstance(value, str) and value),
            f"{key} must be a non-empty string when present",
        )


def make_event(
    type: str,
    attrs: Optional[Mapping[str, Any]] = None,
    seq: int = 0,
    ts_us: Optional[int] = None,
) -> Dict[str, Any]:
    """Build one event dict, stamping trace correlation from the active
    tracing context (satellite of the trace/event join)."""
    event: Dict[str, Any] = {
        "schema": EVENT_SCHEMA,
        "seq": seq,
        "ts_us": int(time.time() * 1e6) if ts_us is None else int(ts_us),
        "type": type,
        "attrs": dict(attrs or {}),
    }
    tracer = tracing.active_tracer()
    if tracer is not None:
        event["trace_id"] = tracer.trace_id
        span_id = tracing.current_span_id()
        if span_id is not None:
            event["span_id"] = span_id
    return event


class EventLog:
    """An append-only, size-rotated NDJSON event log (thread-safe).

    ``root=None`` keeps events purely in the in-memory tail ring — the
    always-on default for embedded services and tests; pass a directory
    to persist.  ``fsync=False`` trades the per-line fsync for speed
    (the line is still flushed to the OS).
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        fsync: bool = True,
        tail_events: int = DEFAULT_TAIL_EVENTS,
    ):
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        self.root = Path(root) if root is not None else None
        self.max_bytes = int(max_bytes)
        self.max_files = max(int(max_files), 1)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._seq = 0
        self._handle: Optional[io.TextIOWrapper] = None
        self._bytes = 0
        self._tail: Deque[Dict[str, Any]] = deque(maxlen=tail_events)
        self.events_total = 0
        self.rotations_total = 0
        self.bad_lines_total = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._recover()

    # -- writing ---------------------------------------------------------

    def record(
        self,
        type: str,
        attrs: Optional[Mapping[str, Any]] = None,
        ts_us: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Append one event; returns the event dict written."""
        with self._lock:
            self._seq += 1
            event = make_event(type, attrs, seq=self._seq, ts_us=ts_us)
            self.events_total += 1
            self._tail.append(event)
            if self.root is not None:
                self._write_locked(event)
        return event

    def _write_locked(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            self._open_locked()
        line = json.dumps(event, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._bytes += len(line.encode("utf-8"))
        if self._bytes >= self.max_bytes:
            self._rotate_locked()

    def _open_locked(self) -> None:
        path = self.root / CURRENT_SEGMENT
        self._handle = open(path, "a", encoding="utf-8")
        self._bytes = path.stat().st_size

    def _rotate_locked(self) -> None:
        """Atomically rename the full live segment aside and start a
        fresh one; prune segments beyond ``max_files``."""
        self._handle.close()
        self._handle = None
        index = max(
            (i for i, _ in _segments(self.root)), default=0
        ) + 1
        os.replace(
            self.root / CURRENT_SEGMENT,
            self.root / f"events-{index:06d}.ndjson",
        )
        _fsync_dir(self.root)
        self.rotations_total += 1
        for _index, path in _segments(self.root)[:-self.max_files]:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._open_locked()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery and reading --------------------------------------------

    def _recover(self) -> None:
        """Resume an existing log directory: continue the sequence past
        the highest recorded ``seq`` and count (never raise on) bad
        lines left by a crash."""
        events, bad = read_event_log(self.root)
        self.bad_lines_total = bad
        if events:
            self._seq = max(e.get("seq", 0) for e in events)
            for event in events[-(self._tail.maxlen or 0):]:
                self._tail.append(event)

    def tail(self, limit: int = 100,
             type: Optional[str] = None) -> List[Dict[str, Any]]:
        """The newest ``limit`` in-memory events (oldest first),
        optionally filtered by event type."""
        with self._lock:
            events = list(self._tail)
        if type is not None:
            events = [e for e in events if e.get("type") == type]
        return events[-max(limit, 0):]

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "dir": str(self.root) if self.root else None,
                "events_total": self.events_total,
                "rotations_total": self.rotations_total,
                "bad_lines_total": self.bad_lines_total,
                "max_bytes": self.max_bytes,
                "max_files": self.max_files,
            }


def _fsync_dir(root: Path) -> None:
    """Make a rename durable (same discipline as
    :mod:`repro.resilience.atomic`); best-effort on platforms where
    directories cannot be fsync'd."""
    try:
        fd = os.open(root, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _segments(root: Path) -> List[Tuple[int, Path]]:
    """Rotated segments as ``(index, path)``, oldest first."""
    out = []
    try:
        names = os.listdir(root)
    except OSError:
        return []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            out.append((int(match.group(1)), root / name))
    return sorted(out)


def iter_event_lines(
    path: Union[str, Path]
) -> Iterator[Tuple[Optional[Dict[str, Any]], str]]:
    """Yield ``(event_or_None, raw_line)`` per non-blank line of one
    segment; ``None`` marks a line that failed to parse or validate."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
                validate_event(event)
            except (json.JSONDecodeError, EventValidationError):
                yield None, stripped
                continue
            yield event, stripped


def read_event_log(
    root: Union[str, Path]
) -> Tuple[List[Dict[str, Any]], int]:
    """Read a whole log (a directory of segments, or one ``.ndjson``
    file) in recorded order; returns ``(events, bad_line_count)``.
    Truncated or corrupt lines — a torn tail after a crash, a flipped
    bit mid-file — are skipped and counted, never raised."""
    root = Path(root)
    if root.is_dir():
        paths = [p for _, p in _segments(root)]
        current = root / CURRENT_SEGMENT
        if current.exists():
            paths.append(current)
    else:
        paths = [root]
    events: List[Dict[str, Any]] = []
    bad = 0
    for path in paths:
        try:
            for event, _ in iter_event_lines(path):
                if event is None:
                    bad += 1
                else:
                    events.append(event)
        except OSError:
            bad += 1
    return events, bad


def validate_event_log(root: Union[str, Path]) -> Dict[str, Any]:
    """Schema-check a whole log; returns a summary dict (used by the CI
    telemetry-smoke job)."""
    events, bad = read_event_log(root)
    types: Dict[str, int] = {}
    for event in events:
        types[event["type"]] = types.get(event["type"], 0) + 1
    return {
        "events_total": len(events),
        "bad_lines_total": bad,
        "types": dict(sorted(types.items())),
    }


# ---------------------------------------------------------------------------
# The sink registry.  Deep modules (breaker, degrade, faults, cache
# quarantine) call emit(); the service installs its EventLog as a sink
# for its lifetime.  One module-global read when nothing is installed.

_SINKS: Tuple[Callable[..., Any], ...] = ()
_SINKS_LOCK = threading.Lock()


def install_sink(sink: Callable[..., Any]) -> None:
    """Register a sink: any callable ``sink(type, attrs_dict)``
    (typically a bound :meth:`EventLog.record`)."""
    global _SINKS
    with _SINKS_LOCK:
        if sink not in _SINKS:
            _SINKS = _SINKS + (sink,)


def remove_sink(sink: Callable[..., Any]) -> None:
    global _SINKS
    with _SINKS_LOCK:
        # Equality, not identity: a bound method like ``telemetry._sink``
        # is a fresh object on every attribute access, but compares equal
        # across accesses.
        _SINKS = tuple(s for s in _SINKS if s != sink)


def emit(type: str, **attrs: Any) -> None:
    """Send one event to every installed sink.  No-op (one global read)
    when nothing is installed, so instrumented hot paths stay free."""
    sinks = _SINKS
    if not sinks:
        return
    for sink in sinks:
        try:
            sink(type, attrs)
        except Exception:  # noqa: BLE001 - telemetry must never take
            # down the operation it is observing
            pass
