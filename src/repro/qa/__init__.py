"""Differential-oracle fuzzing subsystem (QA).

Random program generation over the frontend AST, brute-force oracles for
the two NP-complete cores (inter-dimensional alignment and data-layout
selection) differentially checked against the 0-1 ILP implementations,
metamorphic invariants over the whole pipeline, greedy failure
minimization, and a committed repro-case corpus.

Entry points: :func:`repro.qa.runner.run_fuzz` (programmatic) and the
``fuzz`` CLI subcommand (``autolayout fuzz`` / ``repro fuzz``).
"""

from .corpus import CorpusCase, DEFAULT_CORPUS_DIR, case_meta, load_corpus, \
    write_case
from .generator import GeneratedCase, GeneratorConfig, generate_program, \
    normalize_program
from .metamorphic import (
    METAMORPHIC_CHECKS,
    add_unused_array,
    check_array_renaming,
    check_loop_var_relabeling,
    check_trip_count_scaling,
    check_unused_array,
    rename_identifiers,
    scale_size_parameter,
)
from .minimize import minimize_program, prune_declarations
from .oracles import (
    Divergence,
    alignment_assignment_count,
    best_alignment,
    best_selection,
    check_alignment,
    check_selection,
    enumerate_alignments,
    satisfied_weight,
    selection_combination_count,
)
from .runner import ALL_CHECKS, FuzzFailure, FuzzReport, run_fuzz

__all__ = [
    "ALL_CHECKS",
    "CorpusCase",
    "DEFAULT_CORPUS_DIR",
    "Divergence",
    "FuzzFailure",
    "FuzzReport",
    "GeneratedCase",
    "GeneratorConfig",
    "METAMORPHIC_CHECKS",
    "add_unused_array",
    "alignment_assignment_count",
    "best_alignment",
    "best_selection",
    "case_meta",
    "check_alignment",
    "check_array_renaming",
    "check_loop_var_relabeling",
    "check_selection",
    "check_trip_count_scaling",
    "check_unused_array",
    "enumerate_alignments",
    "generate_program",
    "load_corpus",
    "minimize_program",
    "normalize_program",
    "prune_declarations",
    "rename_identifiers",
    "run_fuzz",
    "satisfied_weight",
    "scale_size_parameter",
    "selection_combination_count",
    "write_case",
]
