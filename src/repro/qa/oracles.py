"""Brute-force oracles for the two NP-complete cores, differentially
checked against the 0-1 ILP implementations.

* **Alignment**: exhaustively enumerate every conflict-free assignment of
  CAG nodes to the ``d`` template partitions (per array, an injective map
  of its dimensions into partitions) and maximize the satisfied edge
  weight — the exact optimum that
  :func:`repro.alignment.ilp.resolve_conflicts` claims.
* **Selection**: exhaustively enumerate every candidate combination of
  the data layout graph and minimize
  :meth:`~repro.selection.layout_graph.DataLayoutGraph.evaluate` — the
  exact optimum that :func:`repro.selection.ilp.select_layouts` claims.

Both checks verify two properties of the ILP answer: the *objective*
matches the enumerated optimum, and the returned *certificate* is feasible
and re-evaluates to the claimed objective.  Instances larger than the
enumeration limits are skipped (reported as ``None``), keeping the oracle
honest about its scope.

The ``build``/``solve`` hooks exist so the mutation tests can inject a
deliberately corrupted model and prove the differential check catches it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..alignment.cag import CAG, Node
from ..alignment.ilp import AlignmentILP, build_alignment_model
from ..ilp import Solution, solve as ilp_solve
from ..selection.ilp import SelectionILP, build_selection_model
from ..selection.layout_graph import DataLayoutGraph

#: skip exhaustive alignment search above this many enumerated assignments
MAX_ALIGNMENT_ASSIGNMENTS = 50_000
#: skip exhaustive selection search above this many candidate combinations
MAX_SELECTION_COMBINATIONS = 50_000

_TOL = 1e-6


@dataclass(frozen=True)
class Divergence:
    """A differential-oracle failure: the ILP disagrees with brute force."""

    kind: str  # "alignment" | "selection"
    detail: str
    ilp_objective: float
    oracle_objective: float

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.kind} divergence: ilp={self.ilp_objective!r} "
            f"oracle={self.oracle_objective!r} ({self.detail})"
        )


# ---------------------------------------------------------------------------
# Alignment
# ---------------------------------------------------------------------------


def _injective_maps(dims: List[int], d: int) -> Iterator[Dict[int, int]]:
    """All injective maps from an array's dimensions into partitions."""
    for combo in itertools.permutations(range(d), len(dims)):
        yield dict(zip(dims, combo))


def alignment_assignment_count(cag: CAG, d: int) -> int:
    """Size of the exhaustive alignment search space."""
    count = 1
    by_array: Dict[str, List[int]] = {}
    for array, dim in cag.nodes:
        by_array.setdefault(array, []).append(dim)
    for dims in by_array.values():
        per = 1
        for k in range(len(dims)):
            per *= d - k
        count *= max(per, 0)
        if count > MAX_ALIGNMENT_ASSIGNMENTS:
            return count
    return count


def enumerate_alignments(cag: CAG, d: int) -> Iterator[Dict[Node, int]]:
    """Every assignment of nodes to partitions with at most one dimension
    of each array per partition (the type1+type2 feasible set)."""
    by_array: Dict[str, List[int]] = {}
    for array, dim in sorted(cag.nodes):
        by_array.setdefault(array, []).append(dim)
    arrays = sorted(by_array)
    choices = [list(_injective_maps(by_array[a], d)) for a in arrays]
    for combo in itertools.product(*choices):
        assignment: Dict[Node, int] = {}
        for array, mapping in zip(arrays, combo):
            for dim, part in mapping.items():
                assignment[(array, dim)] = part
        yield assignment


def satisfied_weight(cag: CAG, assignment: Dict[Node, int]) -> float:
    """Total weight of edges whose endpoints share a partition."""
    return sum(
        w
        for (a, b), w in sorted(cag.weights.items())
        if assignment[a] == assignment[b]
    )


def best_alignment(
    cag: CAG, d: int
) -> Tuple[float, Optional[Dict[Node, int]]]:
    """Exhaustive optimum of the alignment problem."""
    best = -1.0
    best_assignment: Optional[Dict[Node, int]] = None
    for assignment in enumerate_alignments(cag, d):
        value = satisfied_weight(cag, assignment)
        if value > best + _TOL:
            best = value
            best_assignment = assignment
    return max(best, 0.0), best_assignment


def check_alignment(
    cag: CAG,
    d: int,
    backend: str = "scipy",
    build: Callable[[CAG, int], AlignmentILP] = (
        lambda cag, d: build_alignment_model(cag, d)
    ),
) -> Optional[Divergence]:
    """Differentially check the alignment ILP against brute force.

    Returns ``None`` when they agree (or the instance exceeds the
    enumeration limit), a :class:`Divergence` otherwise.
    """
    if any(dim >= d for _a, dim in cag.nodes):
        return None  # not a valid instance for rank d
    if alignment_assignment_count(cag, d) > MAX_ALIGNMENT_ASSIGNMENTS:
        return None
    ilp = build(cag, d)
    solution = ilp_solve(ilp.model, backend=backend)
    if not solution.is_optimal:
        return Divergence(
            kind="alignment",
            detail=f"ILP reported status {solution.status!r}",
            ilp_objective=float("nan"),
            oracle_objective=0.0,
        )
    oracle_value, _ = best_alignment(cag, d)

    # Certificate: decode the node assignment and re-evaluate it.
    assignment: Dict[Node, int] = {}
    for node in sorted(cag.nodes):
        chosen = [
            k
            for k in range(d)
            if solution.values.get(f"n:{node[0]}[{node[1]}]@{k}") == 1
        ]
        if len(chosen) != 1:
            return Divergence(
                kind="alignment",
                detail=f"node {node} assigned to {len(chosen)} partitions",
                ilp_objective=solution.objective,
                oracle_objective=oracle_value,
            )
        assignment[node] = chosen[0]
    per_array_parts: Dict[Tuple[str, int], int] = {}
    for (array, _dim), part in assignment.items():
        key = (array, part)
        per_array_parts[key] = per_array_parts.get(key, 0) + 1
        if per_array_parts[key] > 1:
            return Divergence(
                kind="alignment",
                detail=f"array {array!r} has two dimensions in "
                       f"partition {part}",
                ilp_objective=solution.objective,
                oracle_objective=oracle_value,
            )
    certificate_value = satisfied_weight(cag, assignment)

    tol = max(_TOL, _TOL * abs(oracle_value))
    if abs(certificate_value - solution.objective) > tol:
        return Divergence(
            kind="alignment",
            detail="certificate weight does not match ILP objective "
                   f"(certificate={certificate_value!r})",
            ilp_objective=solution.objective,
            oracle_objective=oracle_value,
        )
    if abs(solution.objective - oracle_value) > tol:
        return Divergence(
            kind="alignment",
            detail="ILP optimum differs from exhaustive optimum",
            ilp_objective=solution.objective,
            oracle_objective=oracle_value,
        )
    return None


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def selection_combination_count(graph: DataLayoutGraph) -> int:
    """Size of the exhaustive selection search space."""
    count = 1
    for costs in graph.node_costs.values():
        count *= max(len(costs), 1)
        if count > MAX_SELECTION_COMBINATIONS:
            return count
    return count


def best_selection(
    graph: DataLayoutGraph,
) -> Tuple[float, Dict[int, int]]:
    """Exhaustive optimum of the selection problem."""
    phases = sorted(graph.node_costs)
    options = [range(len(graph.node_costs[p])) for p in phases]
    best_cost = float("inf")
    best_sel: Dict[int, int] = {}
    for combo in itertools.product(*options):
        selection = dict(zip(phases, combo))
        cost = graph.evaluate(selection)
        if cost < best_cost - _TOL:
            best_cost = cost
            best_sel = selection
    return best_cost, best_sel


def exact_best_selection(
    graph: DataLayoutGraph,
) -> Tuple[float, Dict[int, int]]:
    """Exhaustive optimum under the *canonical* tie-break.

    Unlike :func:`best_selection` (which keeps the first selection
    within ``_TOL`` of the running minimum), this variant compares costs
    exactly, so first-wins enumeration order yields the
    lexicographically smallest exact optimum — the same certificate the
    presolved and warm-started solvers promise.  Used by the presolve
    soundness checks, which reason about candidates that appear in
    *every* exact optimum.
    """
    phases = sorted(graph.node_costs)
    options = [range(len(graph.node_costs[p])) for p in phases]
    best_cost = float("inf")
    best_sel: Dict[int, int] = {}
    for combo in itertools.product(*options):
        selection = dict(zip(phases, combo))
        cost = graph.evaluate(selection)
        if cost < best_cost:
            best_cost = cost
            best_sel = selection
    return best_cost, best_sel


def check_selection(
    graph: DataLayoutGraph,
    backend: str = "scipy",
    build: Callable[[DataLayoutGraph], SelectionILP] = (
        lambda graph: build_selection_model(graph)
    ),
) -> Optional[Divergence]:
    """Differentially check the selection ILP against brute force."""
    if not graph.node_costs:
        return None
    if selection_combination_count(graph) > MAX_SELECTION_COMBINATIONS:
        return None
    ilp = build(graph)
    solution: Solution = ilp_solve(ilp.model, backend=backend)
    if not solution.is_optimal:
        return Divergence(
            kind="selection",
            detail=f"ILP reported status {solution.status!r}",
            ilp_objective=float("nan"),
            oracle_objective=0.0,
        )
    oracle_cost, _ = best_selection(graph)

    # Certificate: decode the selection and re-evaluate with the shared
    # evaluator (independent of the — possibly corrupted — objective).
    selection: Dict[int, int] = {}
    for phase_index, costs in graph.node_costs.items():
        chosen = [
            cand
            for cand in range(len(costs))
            if solution.values.get(f"x:{phase_index}:{cand}") == 1
        ]
        if len(chosen) != 1:
            return Divergence(
                kind="selection",
                detail=f"phase {phase_index} selected {len(chosen)} "
                       "candidates",
                ilp_objective=solution.objective,
                oracle_objective=oracle_cost,
            )
        selection[phase_index] = chosen[0]
    certificate_cost = graph.evaluate(selection)

    tol = max(_TOL, _TOL * abs(oracle_cost))
    if certificate_cost > oracle_cost + tol:
        return Divergence(
            kind="selection",
            detail="ILP certificate is suboptimal "
                   f"(certificate={certificate_cost!r}, "
                   f"selection={selection})",
            ilp_objective=solution.objective,
            oracle_objective=oracle_cost,
        )
    if abs(solution.objective - certificate_cost) > tol:
        return Divergence(
            kind="selection",
            detail="ILP objective does not match its own certificate "
                   f"(certificate={certificate_cost!r})",
            ilp_objective=solution.objective,
            oracle_objective=oracle_cost,
        )
    return None
