"""Greedy failure minimization: shrink a failing program while
re-checking that it still fails.

The algorithm is classic delta-debugging specialised to the subset AST:

1. repeatedly try deleting one statement anywhere in the program (walking
   statement sequences recursively, so whole loops, loop-body statements
   and branch arms are all candidates), keeping any deletion that
   preserves the failure predicate;
2. when no single statement deletion preserves the failure, try
   *flattening* — replacing a ``DO`` or ``IF`` by its body;
3. finally prune declarations of arrays the shrunken body no longer
   references.

The predicate receives a candidate :class:`~repro.frontend.ast.Program`
and returns True when the failure still reproduces; predicate exceptions
count as "does not reproduce", so the minimizer never trades one bug for
a different one.  The total number of predicate evaluations is capped.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..frontend import ast

Predicate = Callable[[ast.Program], bool]

#: hard cap on predicate evaluations per minimization
MAX_PREDICATE_CALLS = 400


def _delete_in_seq(
    stmts: Tuple[ast.Stmt, ...]
) -> Iterator[Tuple[ast.Stmt, ...]]:
    """All sequences obtainable by deleting exactly one statement
    (recursively inside loop and branch bodies)."""
    for idx, stmt in enumerate(stmts):
        yield stmts[:idx] + stmts[idx + 1:]
        if isinstance(stmt, ast.Do):
            for body in _delete_in_seq(stmt.body):
                yield stmts[:idx] + (
                    ast.Do(var=stmt.var, lo=stmt.lo, hi=stmt.hi,
                           step=stmt.step, body=body, label=stmt.label,
                           line=stmt.line),
                ) + stmts[idx + 1:]
        elif isinstance(stmt, ast.If):
            for body in _delete_in_seq(stmt.then_body):
                yield stmts[:idx] + (
                    ast.If(cond=stmt.cond, then_body=body,
                           else_body=stmt.else_body, line=stmt.line),
                ) + stmts[idx + 1:]
            for body in _delete_in_seq(stmt.else_body):
                yield stmts[:idx] + (
                    ast.If(cond=stmt.cond, then_body=stmt.then_body,
                           else_body=body, line=stmt.line),
                ) + stmts[idx + 1:]


def _flatten_in_seq(
    stmts: Tuple[ast.Stmt, ...]
) -> Iterator[Tuple[ast.Stmt, ...]]:
    """All sequences obtainable by replacing one compound statement with
    its body (recursively)."""
    for idx, stmt in enumerate(stmts):
        if isinstance(stmt, ast.Do):
            yield stmts[:idx] + stmt.body + stmts[idx + 1:]
            for body in _flatten_in_seq(stmt.body):
                yield stmts[:idx] + (
                    ast.Do(var=stmt.var, lo=stmt.lo, hi=stmt.hi,
                           step=stmt.step, body=body, label=stmt.label,
                           line=stmt.line),
                ) + stmts[idx + 1:]
        elif isinstance(stmt, ast.If):
            yield stmts[:idx] + stmt.then_body + stmt.else_body \
                + stmts[idx + 1:]


def _referenced_names(program: ast.Program) -> set:
    names = set()
    for stmt in ast.walk_stmts(program.body):
        for expr in ast.stmt_exprs(stmt):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.ArrayRef):
                    names.add(node.name)
                elif isinstance(node, ast.Var):
                    names.add(node.name)
    return names


def prune_declarations(program: ast.Program) -> ast.Program:
    """Drop declared *arrays* the body never references (scalars and
    PARAMETER constants are kept: they may size the remaining arrays)."""
    used = _referenced_names(program)
    declarations: List[ast.Declaration] = []
    for decl in program.declarations:
        if isinstance(decl, (ast.TypeDecl, ast.DimensionDecl)):
            entities = tuple(
                e for e in decl.entities if not e.dims or e.name in used
            )
            if not entities:
                continue
            if isinstance(decl, ast.TypeDecl):
                decl = ast.TypeDecl(
                    dtype=decl.dtype, entities=entities, line=decl.line
                )
            else:
                decl = ast.DimensionDecl(entities=entities, line=decl.line)
        declarations.append(decl)
    return ast.Program(
        name=program.name,
        declarations=tuple(declarations),
        body=program.body,
    )


def _with_body(
    program: ast.Program, body: Tuple[ast.Stmt, ...]
) -> ast.Program:
    return ast.Program(
        name=program.name, declarations=program.declarations, body=body
    )


def minimize_program(
    program: ast.Program,
    predicate: Predicate,
    max_calls: int = MAX_PREDICATE_CALLS,
) -> ast.Program:
    """Greedily shrink ``program`` while ``predicate`` keeps returning
    True.  Returns the smallest variant found (possibly the input)."""
    calls = 0

    def holds(candidate: ast.Program) -> bool:
        nonlocal calls
        if calls >= max_calls:
            return False
        calls += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    if not holds(program):  # the input itself must reproduce
        return program

    current = program
    progress = True
    while progress and calls < max_calls:
        progress = False
        for body in _delete_in_seq(current.body):
            candidate = _with_body(current, body)
            if holds(candidate):
                current = candidate
                progress = True
                break
        if progress:
            continue
        for body in _flatten_in_seq(current.body):
            candidate = _with_body(current, body)
            if holds(candidate):
                current = candidate
                progress = True
                break

    pruned = prune_declarations(current)
    if pruned != current and holds(pruned):
        current = pruned
    return current
