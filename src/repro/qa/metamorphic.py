"""Metamorphic invariants over the whole layout pipeline.

Each check runs the full assistant on a program and on a semantically
related transform of it, then asserts a relation the paper's framework
must satisfy:

* **array renaming** — a bijective renaming of the arrays changes nothing
  the cost model can see: the per-phase cost *multisets* and the selected
  optimum are preserved (candidate enumeration order may permute with the
  names, so the comparison is order-free; the deliberate ``1e-9``
  position-dependent tie-break factor in the layout graph bounds the
  allowed drift);
* **induction-variable relabeling** (phase-order preserving) — renaming
  loop variables leaves every cost bitwise identical;
* **trip-count scaling** — scaling the problem size ``n`` (which scales
  every phase loop's trip count and every array extent together) never
  *decreases* any phase's cheapest cost nor the selected optimum;
* **unused array** — declaring an extra array that no statement references
  (and that does not enlarge the program template) leaves the selection
  and its objective bitwise identical.

All checks return ``None`` on success or a human-readable violation
description, so the fuzz runner can treat them uniformly with the
ILP-vs-oracle divergences.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..frontend import ast
from ..frontend.printer import format_program
from ..tool.assistant import AssistantConfig, AssistantResult, run_assistant

#: relative tolerance for order-free comparisons (tie-break factor drift)
_REL_TOL = 1e-6


# ---------------------------------------------------------------------------
# AST transforms
# ---------------------------------------------------------------------------


def _rename_expr(expr: ast.Expr, mapping: Dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.Var):
        return ast.Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, ast.ArrayRef):
        return ast.ArrayRef(
            mapping.get(expr.name, expr.name),
            tuple(_rename_expr(s, mapping) for s in expr.subscripts),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rename_expr(expr.operand, mapping))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _rename_expr(expr.left, mapping),
            _rename_expr(expr.right, mapping),
        )
    if isinstance(expr, ast.Call):
        return ast.Call(
            expr.name, tuple(_rename_expr(a, mapping) for a in expr.args)
        )
    return expr


def _rename_stmt(stmt: ast.Stmt, mapping: Dict[str, str]) -> ast.Stmt:
    if isinstance(stmt, ast.Assign):
        return ast.Assign(
            target=_rename_expr(stmt.target, mapping),
            expr=_rename_expr(stmt.expr, mapping),
            line=stmt.line,
        )
    if isinstance(stmt, ast.Do):
        return ast.Do(
            var=mapping.get(stmt.var, stmt.var),
            lo=_rename_expr(stmt.lo, mapping),
            hi=_rename_expr(stmt.hi, mapping),
            step=(
                _rename_expr(stmt.step, mapping)
                if stmt.step is not None else None
            ),
            body=tuple(_rename_stmt(s, mapping) for s in stmt.body),
            label=stmt.label,
            line=stmt.line,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=_rename_expr(stmt.cond, mapping),
            then_body=tuple(
                _rename_stmt(s, mapping) for s in stmt.then_body
            ),
            else_body=tuple(
                _rename_stmt(s, mapping) for s in stmt.else_body
            ),
            line=stmt.line,
        )
    return stmt


def _rename_declaration(
    decl: ast.Declaration, mapping: Dict[str, str]
) -> ast.Declaration:
    def rename_entity(entity: ast.Entity) -> ast.Entity:
        return ast.Entity(
            name=mapping.get(entity.name, entity.name),
            dims=tuple(
                ast.DimSpec(
                    lo=_rename_expr(d.lo, mapping),
                    hi=_rename_expr(d.hi, mapping),
                )
                for d in entity.dims
            ),
        )

    if isinstance(decl, (ast.TypeDecl,)):
        return ast.TypeDecl(
            dtype=decl.dtype,
            entities=tuple(rename_entity(e) for e in decl.entities),
            line=decl.line,
        )
    if isinstance(decl, ast.DimensionDecl):
        return ast.DimensionDecl(
            entities=tuple(rename_entity(e) for e in decl.entities),
            line=decl.line,
        )
    if isinstance(decl, ast.ParameterDecl):
        return ast.ParameterDecl(
            bindings=tuple(
                (mapping.get(name, name), _rename_expr(expr, mapping))
                for name, expr in decl.bindings
            ),
            line=decl.line,
        )
    return decl


def rename_identifiers(
    program: ast.Program, mapping: Dict[str, str]
) -> ast.Program:
    """Rebuild ``program`` with a consistent identifier renaming."""
    return ast.Program(
        name=program.name,
        declarations=tuple(
            _rename_declaration(d, mapping) for d in program.declarations
        ),
        body=tuple(_rename_stmt(s, mapping) for s in program.body),
    )


def declared_arrays(program: ast.Program) -> List[str]:
    """Names declared with a dimension spec, in declaration order."""
    out: List[str] = []
    for decl in program.declarations:
        if isinstance(decl, (ast.TypeDecl, ast.DimensionDecl)):
            for entity in decl.entities:
                if entity.dims and entity.name not in out:
                    out.append(entity.name)
    return out


def scale_size_parameter(
    program: ast.Program, factor: int, name: str = "n"
) -> ast.Program:
    """Multiply the integer PARAMETER ``name`` (the problem size that
    drives every trip count and array extent) by ``factor``."""
    declarations = []
    for decl in program.declarations:
        if isinstance(decl, ast.ParameterDecl):
            bindings = tuple(
                (
                    bname,
                    ast.IntLit(expr.value * factor)
                    if bname == name and isinstance(expr, ast.IntLit)
                    else expr,
                )
                for bname, expr in decl.bindings
            )
            decl = ast.ParameterDecl(bindings=bindings, line=decl.line)
        declarations.append(decl)
    return ast.Program(
        name=program.name,
        declarations=tuple(declarations),
        body=program.body,
    )


def add_unused_array(
    program: ast.Program, name: str = "zunused", dtype: str = "real"
) -> ast.Program:
    """Append a rank-1 array sized by the existing ``n`` parameter that no
    statement references.  By construction it cannot enlarge the program
    template (rank 1, extent n <= the template's first extent)."""
    extra = ast.TypeDecl(
        dtype=dtype,
        entities=(
            ast.Entity(
                name=name,
                dims=(ast.DimSpec(lo=ast.IntLit(1), hi=ast.Var("n")),),
            ),
        ),
    )
    return ast.Program(
        name=program.name,
        declarations=program.declarations + (extra,),
        body=program.body,
    )


# ---------------------------------------------------------------------------
# Invariant checks
# ---------------------------------------------------------------------------


Runner = Callable[[str, AssistantConfig], AssistantResult]


def _multiset_close(a: List[float], b: List[float]) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(sorted(a), sorted(b)):
        if abs(x - y) > _REL_TOL * max(abs(x), abs(y), 1.0):
            return False
    return True


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(abs(a), abs(b), 1.0)


def check_array_renaming(
    program: ast.Program,
    config: AssistantConfig,
    base: Optional[AssistantResult] = None,
    runner: Runner = run_assistant,
) -> Optional[str]:
    """Renaming arrays must preserve cost multisets and the optimum."""
    arrays = declared_arrays(program)
    mapping = {name: f"z{name}ren" for name in arrays}
    renamed = rename_identifiers(program, mapping)
    base = base or runner(format_program(program), config)
    other = runner(format_program(renamed), config)
    if len(base.partition.phases) != len(other.partition.phases):
        return (
            "array renaming changed the phase count: "
            f"{len(base.partition.phases)} != {len(other.partition.phases)}"
        )
    for idx in base.graph.node_costs:
        if not _multiset_close(
            base.graph.node_costs[idx], other.graph.node_costs[idx]
        ):
            return (
                f"array renaming changed phase {idx} cost multiset: "
                f"{sorted(base.graph.node_costs[idx])} != "
                f"{sorted(other.graph.node_costs[idx])}"
            )
    if not _close(base.selection.objective, other.selection.objective):
        return (
            "array renaming changed the optimum: "
            f"{base.selection.objective!r} != "
            f"{other.selection.objective!r}"
        )
    return None


def check_loop_var_relabeling(
    program: ast.Program,
    config: AssistantConfig,
    base: Optional[AssistantResult] = None,
    runner: Runner = run_assistant,
) -> Optional[str]:
    """Renaming induction variables (a phase-order-preserving relabeling)
    must leave every cost bitwise identical."""
    loop_vars = sorted({
        stmt.var
        for stmt in ast.walk_stmts(program.body)
        if isinstance(stmt, ast.Do)
    })
    mapping = {var: f"{var}{var}x" for var in loop_vars}
    relabeled = rename_identifiers(program, mapping)
    base = base or runner(format_program(program), config)
    other = runner(format_program(relabeled), config)
    if base.graph.node_costs != other.graph.node_costs:
        return (
            "loop-variable relabeling changed node costs: "
            f"{base.graph.node_costs} != {other.graph.node_costs}"
        )
    if base.selection.objective != other.selection.objective:
        return (
            "loop-variable relabeling changed the optimum: "
            f"{base.selection.objective!r} != "
            f"{other.selection.objective!r}"
        )
    return None


def check_trip_count_scaling(
    program: ast.Program,
    config: AssistantConfig,
    base: Optional[AssistantResult] = None,
    runner: Runner = run_assistant,
    factor: int = 2,
) -> Optional[str]:
    """Scaling every trip count (via the size parameter) must not make any
    phase cheaper, nor the selected optimum."""
    scaled = scale_size_parameter(program, factor)
    base = base or runner(format_program(program), config)
    other = runner(format_program(scaled), config)
    if len(base.partition.phases) != len(other.partition.phases):
        return (
            "size scaling changed the phase count: "
            f"{len(base.partition.phases)} != {len(other.partition.phases)}"
        )
    slack = _REL_TOL * max(abs(base.selection.objective), 1.0)
    for idx in base.graph.node_costs:
        lo_before = min(base.graph.node_costs[idx])
        lo_after = min(other.graph.node_costs[idx])
        if lo_after < lo_before - slack:
            return (
                f"scaling n by {factor} made phase {idx} cheaper: "
                f"{lo_before!r} -> {lo_after!r}"
            )
    if other.selection.objective < base.selection.objective - slack:
        return (
            f"scaling n by {factor} lowered the optimum: "
            f"{base.selection.objective!r} -> "
            f"{other.selection.objective!r}"
        )
    return None


def check_unused_array(
    program: ast.Program,
    config: AssistantConfig,
    base: Optional[AssistantResult] = None,
    runner: Runner = run_assistant,
) -> Optional[str]:
    """An extra never-referenced array must change nothing at all."""
    extended = add_unused_array(program)
    base = base or runner(format_program(program), config)
    other = runner(format_program(extended), config)
    if base.selection.selection != other.selection.selection:
        return (
            "unused array changed the selection: "
            f"{base.selection.selection} != {other.selection.selection}"
        )
    if base.selection.objective != other.selection.objective:
        return (
            "unused array changed the optimum: "
            f"{base.selection.objective!r} != "
            f"{other.selection.objective!r}"
        )
    if base.graph.node_costs != other.graph.node_costs:
        return "unused array changed node costs"
    return None


#: name -> check, in the order the fuzz runner applies them
METAMORPHIC_CHECKS: Dict[str, Callable[..., Optional[str]]] = {
    "rename-arrays": check_array_renaming,
    "relabel-loop-vars": check_loop_var_relabeling,
    "scale-trip-counts": check_trip_count_scaling,
    "unused-array": check_unused_array,
}
