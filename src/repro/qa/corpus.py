"""Repro-case corpus: serialization of (minimized) generated programs.

Each corpus case is a pair of files in one directory:

* ``<name>.f`` — the Fortran source (parseable by the frontend);
* ``<name>.json`` — metadata: generator seed + config, the check that
  motivated the case ("seed" for curated coverage cases, otherwise the
  failing check's kind), a human-readable detail string, and the pipeline
  parameters it should be replayed with.

``tests/corpus/`` is the committed corpus; every divergence the fuzzer
ever finds gets minimized and committed there so it runs as a regression
test forever (see ``tests/test_qa_corpus.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..resilience.atomic import atomic_write_json, atomic_write_text
from .generator import GeneratorConfig

#: the committed regression corpus, relative to the repo root
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


@dataclass
class CorpusCase:
    """One on-disk corpus entry."""

    name: str
    source: str
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return str(self.meta.get("kind", "seed"))

    @property
    def nprocs(self) -> int:
        return int(self.meta.get("nprocs", 4))

    @property
    def seed(self) -> Optional[int]:
        seed = self.meta.get("seed")
        return None if seed is None else int(seed)


def case_meta(
    *,
    kind: str,
    seed: Optional[int] = None,
    config: Optional[GeneratorConfig] = None,
    detail: str = "",
    nprocs: int = 4,
    minimized: bool = False,
) -> Dict[str, Any]:
    """Build the canonical metadata dict for a corpus case."""
    meta: Dict[str, Any] = {
        "kind": kind,
        "detail": detail,
        "nprocs": nprocs,
        "minimized": minimized,
    }
    if seed is not None:
        meta["seed"] = seed
    if config is not None:
        meta["generator_config"] = asdict(config)
    return meta


def write_case(
    directory: str, name: str, source: str, meta: Dict[str, Any]
) -> str:
    """Write one case atomically (a crash mid-write must never leave a
    half-formed repro in the committed corpus); returns the source
    path."""
    os.makedirs(directory, exist_ok=True)
    src_path = os.path.join(directory, f"{name}.f")
    atomic_write_text(src_path, source)
    atomic_write_json(os.path.join(directory, f"{name}.json"), meta)
    return src_path


def load_corpus(directory: str = DEFAULT_CORPUS_DIR) -> List[CorpusCase]:
    """Load every case in ``directory``, sorted by name."""
    if not os.path.isdir(directory):
        return []
    cases: List[CorpusCase] = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".f"):
            continue
        name = entry[:-2]
        with open(os.path.join(directory, entry), encoding="utf-8") as fh:
            source = fh.read()
        meta: Dict[str, Any] = {}
        meta_path = os.path.join(directory, f"{name}.json")
        if os.path.exists(meta_path):
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
        cases.append(CorpusCase(name=name, source=source, meta=meta))
    return cases
