"""The fuzz campaign driver: generate → check → minimize → serialize.

For every case seed the runner

1. generates a random program (``generator``) and property-checks the
   printer↔parser round trip;
2. runs the full assistant pipeline on it (a crash is itself a failure);
3. differentially checks the per-phase alignment ILPs and the selection
   ILP against the brute-force oracles (``oracles``), skipping instances
   beyond the enumeration limits;
4. runs the metamorphic pipeline invariants (``metamorphic``);
5. on any failure, greedily minimizes the program under the same failing
   check (``minimize``) and serializes the repro case (``corpus``).

The campaign is bounded by a case count and/or a wall-clock budget and is
fully deterministic for a given (seed, config) pair.  Every case emits an
observability span (no-ops when tracing is off), so ``--trace`` makes a
whole campaign inspectable in the usual tooling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..alignment.weights import build_phase_cag
from ..frontend import ast
from ..frontend.parser import parse_source
from ..frontend.printer import format_program
from ..obs.tracing import add_event as obs_event, span as obs_span
from ..perf.estimator import estimate_search_spaces
from ..selection.ilp import select_layouts
from ..selection.presolve import presolve_selection
from ..tool.assistant import AssistantConfig, AssistantResult, run_assistant
from . import metamorphic as mm
from . import oracles
from .corpus import case_meta, write_case
from .generator import GeneratedCase, GeneratorConfig, generate_program, \
    normalize_program
from .minimize import minimize_program

#: every check the runner knows, in execution order
ALL_CHECKS = (
    "roundtrip",
    "pipeline",
    "alignment-oracle",
    "selection-oracle",
    "estimator-batch",
    "selection-presolve",
    "warm-start",
    "rename-arrays",
    "relabel-loop-vars",
    "scale-trip-counts",
    "unused-array",
)


@dataclass
class FuzzFailure:
    """One failing case, before and after minimization."""

    seed: int
    check: str
    detail: str
    source: str
    minimized_source: Optional[str] = None

    def describe(self) -> str:
        return f"seed {self.seed}: [{self.check}] {self.detail}"


@dataclass
class FuzzReport:
    """Campaign summary."""

    seed: int
    cases_run: int = 0
    elapsed: float = 0.0
    checks_run: Dict[str, int] = field(default_factory=dict)
    oracle_skips: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def count(self, check: str) -> None:
        self.checks_run[check] = self.checks_run.get(check, 0) + 1

    def skip(self, check: str) -> None:
        self.oracle_skips[check] = self.oracle_skips.get(check, 0) + 1

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} cases in {self.elapsed:.1f}s "
            f"(base seed {self.seed}) — "
            + ("OK" if self.ok else f"{len(self.failures)} FAILURES"),
        ]
        for check in ALL_CHECKS:
            ran = self.checks_run.get(check, 0)
            if not ran:
                continue
            skipped = self.oracle_skips.get(check, 0)
            note = f" ({skipped} beyond oracle limits)" if skipped else ""
            lines.append(f"  {check:<20} {ran:>6} checks{note}")
        for failure in self.failures:
            lines.append(f"  FAIL {failure.describe()}")
        return "\n".join(lines)


def _check_roundtrip(case: GeneratedCase) -> Optional[str]:
    reparsed = parse_source(case.source)
    if normalize_program(reparsed) != normalize_program(case.program):
        return "parse(print(ast)) != normalized ast"
    # And printing must be a fixpoint on the reparsed tree.
    if format_program(reparsed) != case.source:
        return "print(parse(print(ast))) != print(ast)"
    return None


def _alignment_divergence(
    result: AssistantResult, backend: str,
    report: Optional[FuzzReport] = None,
) -> Optional[str]:
    d = result.template.rank
    for phase in result.partition.phases:
        cag = build_phase_cag(phase, result.symbols)
        if (
            oracles.alignment_assignment_count(cag, d)
            > oracles.MAX_ALIGNMENT_ASSIGNMENTS
        ):
            if report is not None:
                report.skip("alignment-oracle")
            continue
        divergence = oracles.check_alignment(cag, d, backend=backend)
        if divergence is not None:
            return f"phase {phase.index}: {divergence}"
    return None


def _selection_divergence(
    result: AssistantResult, backend: str,
    report: Optional[FuzzReport] = None,
) -> Optional[str]:
    graph = result.graph
    if (
        oracles.selection_combination_count(graph)
        > oracles.MAX_SELECTION_COMBINATIONS
    ):
        if report is not None:
            report.skip("selection-oracle")
        return None
    divergence = oracles.check_selection(graph, backend=backend)
    return None if divergence is None else str(divergence)


def _estimator_batch_divergence(result: AssistantResult) -> Optional[str]:
    """Property: the batched estimator equals the legacy scalar one,
    cost component by cost component, *bitwise* — not approximately."""
    scalar = estimate_search_spaces(
        result.partition.phases, result.layout_spaces, result.symbols,
        result.config.machine, db=result.db,
        options=result.config.compiler, mode="scalar",
    )
    batched = estimate_search_spaces(
        result.partition.phases, result.layout_spaces, result.symbols,
        result.config.machine, db=result.db,
        options=result.config.compiler, mode="batched",
    )
    if sorted(scalar.per_phase) != sorted(batched.per_phase):
        return "estimators priced different phase sets"
    for idx in sorted(scalar.per_phase):
        s_list = scalar.per_phase[idx]
        b_list = batched.per_phase[idx]
        if len(s_list) != len(b_list):
            return (f"phase {idx}: {len(s_list)} scalar vs "
                    f"{len(b_list)} batched candidates")
        for pos, (s, b) in enumerate(zip(s_list, b_list)):
            se, be = s.estimate, b.estimate
            if (se.compute != be.compute
                    or se.communication != be.communication
                    or se.pipeline != be.pipeline
                    or se.exec_class != be.exec_class):
                return (
                    f"phase {idx} candidate {pos}: scalar "
                    f"(compute={se.compute!r}, comm={se.communication!r}, "
                    f"pipeline={se.pipeline!r}, class={se.exec_class}) != "
                    f"batched (compute={be.compute!r}, "
                    f"comm={be.communication!r}, pipeline={be.pipeline!r}, "
                    f"class={be.exec_class})"
                )
    return None


def _presolve_divergence(
    result: AssistantResult, backend: str,
    report: Optional[FuzzReport] = None,
) -> Optional[str]:
    """Presolve soundness: the graph-presolve path must reproduce the
    unpresolved ILP's canonical selection and objective exactly, and
    every presolve-fixed phase must carry the same candidate in the
    brute-force oracle's optimal certificate."""
    graph = result.graph
    if (
        oracles.selection_combination_count(graph)
        > oracles.MAX_SELECTION_COMBINATIONS
    ):
        if report is not None:
            report.skip("selection-presolve")
        return None
    if not graph.node_costs:
        return None
    ref = select_layouts(graph, backend=backend, presolve=False)
    fast = select_layouts(graph, backend=backend, presolve=True)
    if fast.selection != ref.selection:
        return (f"presolved selection {fast.selection} != "
                f"unpresolved {ref.selection}")
    if fast.objective != ref.objective:
        return (f"presolved objective {fast.objective!r} != "
                f"unpresolved {ref.objective!r}")
    oracle_cost, oracle_sel = oracles.exact_best_selection(graph)
    pre = presolve_selection(graph)
    for phase_index, cand in sorted(pre.fixed.items()):
        if oracle_sel.get(phase_index) != cand:
            return (
                f"presolve fixed phase {phase_index} to candidate "
                f"{cand} but the oracle certificate selects "
                f"{oracle_sel.get(phase_index)}"
            )
    if fast.objective != oracle_cost:
        return (f"presolved objective {fast.objective!r} != exhaustive "
                f"optimum {oracle_cost!r}")
    return None


def _warm_start_divergence(
    result: AssistantResult, backend: str,
    report: Optional[FuzzReport] = None,
) -> Optional[str]:
    """Warm starts must never change the canonical answer: seeding the
    solver with the optimum itself, or with a deliberately shifted
    feasible selection, yields the identical result — on the default
    backend and on branch-bound (the one that actually consumes
    seeds)."""
    graph = result.graph
    if (
        oracles.selection_combination_count(graph)
        > oracles.MAX_SELECTION_COMBINATIONS
    ):
        if report is not None:
            report.skip("warm-start")
        return None
    if not graph.node_costs:
        return None
    cold = select_layouts(graph, backend=backend, presolve=True)
    shifted = {
        p: (c + 1) % len(graph.node_costs[p])
        for p, c in cold.selection.items()
    }
    small = (
        oracles.selection_combination_count(graph) <= 2_000
    )
    seeds = [("optimal", cold.selection), ("shifted", shifted)]
    for seed_name, seed in seeds:
        for be in (backend, "branch-bound"):
            warm = select_layouts(
                graph, backend=be, presolve=True, warm_start=seed
            )
            if (warm.selection != cold.selection
                    or warm.objective != cold.objective):
                return (
                    f"{seed_name} warm start on {be} changed the answer: "
                    f"{warm.selection} ({warm.objective!r}) != "
                    f"{cold.selection} ({cold.objective!r})"
                )
        if not small:
            continue
        # The unpresolved branch-bound model is the one place a seed
        # truly steers the search; keep it to small instances.
        full = select_layouts(
            graph, backend="branch-bound", presolve=False, warm_start=seed
        )
        if (full.selection != cold.selection
                or full.objective != cold.objective):
            return (
                f"{seed_name} warm start on the unpresolved "
                f"branch-bound model changed the answer: "
                f"{full.selection} ({full.objective!r}) != "
                f"{cold.selection} ({cold.objective!r})"
            )
    return None


def _failure_predicate(
    check: str, assistant_config: AssistantConfig, backend: str
) -> Callable[[ast.Program], bool]:
    """Predicate for the minimizer: does ``check`` still fail?"""

    def run(program: ast.Program) -> AssistantResult:
        return run_assistant(format_program(program), assistant_config)

    def predicate(program: ast.Program) -> bool:
        if check == "roundtrip":
            case = GeneratedCase(
                seed=-1, config=GeneratorConfig(), program=program
            )
            return _check_roundtrip(case) is not None
        if check == "pipeline":
            try:
                run(program)
            except Exception:
                return True
            return False
        result = run(program)
        if check == "alignment-oracle":
            return _alignment_divergence(result, backend) is not None
        if check == "selection-oracle":
            return _selection_divergence(result, backend) is not None
        if check == "estimator-batch":
            return _estimator_batch_divergence(result) is not None
        if check == "selection-presolve":
            return _presolve_divergence(result, backend) is not None
        if check == "warm-start":
            return _warm_start_divergence(result, backend) is not None
        checker = mm.METAMORPHIC_CHECKS.get(check)
        if checker is None:
            return False
        return checker(program, assistant_config, base=result) is not None

    return predicate


def run_fuzz(
    seed: int = 0,
    cases: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    config: Optional[GeneratorConfig] = None,
    assistant_config: Optional[AssistantConfig] = None,
    checks: Optional[List[str]] = None,
    minimize: bool = True,
    out_dir: Optional[str] = None,
    progress: Optional[Callable[[int, FuzzReport], None]] = None,
) -> FuzzReport:
    """Run a fuzz campaign; see the module docstring for the per-case
    protocol.  ``cases`` and ``budget_seconds`` may be combined; with
    neither given, the campaign runs 100 cases."""
    config = config or GeneratorConfig()
    assistant_config = assistant_config or AssistantConfig(nprocs=4)
    backend = assistant_config.ilp_backend
    enabled = list(checks) if checks is not None else list(ALL_CHECKS)
    for check in enabled:
        if check not in ALL_CHECKS:
            raise ValueError(f"unknown fuzz check {check!r}")
    if cases is None and budget_seconds is None:
        cases = 100

    report = FuzzReport(seed=seed)
    start = time.monotonic()
    index = 0
    with obs_span("fuzz.campaign", seed=seed,
                  cases=cases if cases is not None else -1):
        while True:
            if cases is not None and index >= cases:
                break
            if (
                budget_seconds is not None
                and time.monotonic() - start >= budget_seconds
            ):
                break
            case_seed = seed + index
            index += 1
            with obs_span("fuzz.case", seed=case_seed):
                failure = _run_case(
                    case_seed, config, assistant_config, backend,
                    enabled, report,
                )
            report.cases_run += 1
            if failure is not None:
                if minimize:
                    predicate = _failure_predicate(
                        failure.check, assistant_config, backend
                    )
                    with obs_span("fuzz.minimize", seed=case_seed,
                                  check=failure.check):
                        minimized = minimize_program(
                            generate_program(case_seed, config).program,
                            predicate,
                        )
                    failure.minimized_source = format_program(minimized)
                report.failures.append(failure)
                obs_event("fuzz.failure", seed=case_seed,
                          check=failure.check, detail=failure.detail)
                if out_dir is not None:
                    write_case(
                        out_dir,
                        f"fail-{failure.check}-{case_seed}",
                        failure.minimized_source or failure.source,
                        case_meta(
                            kind=failure.check,
                            seed=case_seed,
                            config=config,
                            detail=failure.detail,
                            nprocs=assistant_config.nprocs,
                            minimized=failure.minimized_source is not None,
                        ),
                    )
            if progress is not None:
                progress(case_seed, report)
    report.elapsed = time.monotonic() - start
    return report


def _run_case(
    case_seed: int,
    config: GeneratorConfig,
    assistant_config: AssistantConfig,
    backend: str,
    enabled: List[str],
    report: FuzzReport,
) -> Optional[FuzzFailure]:
    case = generate_program(case_seed, config)

    def fail(check: str, detail: str) -> FuzzFailure:
        return FuzzFailure(
            seed=case_seed, check=check, detail=detail, source=case.source
        )

    if "roundtrip" in enabled:
        report.count("roundtrip")
        detail = _check_roundtrip(case)
        if detail is not None:
            return fail("roundtrip", detail)

    needs_pipeline = any(c in enabled for c in ALL_CHECKS[1:])
    if not needs_pipeline:
        return None
    report.count("pipeline")
    try:
        result = run_assistant(case.source, assistant_config)
    except Exception as exc:  # a pipeline crash is a finding, not an abort
        return fail("pipeline", f"{type(exc).__name__}: {exc}")

    if "alignment-oracle" in enabled:
        report.count("alignment-oracle")
        detail = _alignment_divergence(result, backend, report)
        if detail is not None:
            return fail("alignment-oracle", detail)
    if "selection-oracle" in enabled:
        report.count("selection-oracle")
        detail = _selection_divergence(result, backend, report)
        if detail is not None:
            return fail("selection-oracle", detail)
    if "estimator-batch" in enabled:
        report.count("estimator-batch")
        detail = _estimator_batch_divergence(result)
        if detail is not None:
            return fail("estimator-batch", detail)
    if "selection-presolve" in enabled:
        report.count("selection-presolve")
        detail = _presolve_divergence(result, backend, report)
        if detail is not None:
            return fail("selection-presolve", detail)
    if "warm-start" in enabled:
        report.count("warm-start")
        detail = _warm_start_divergence(result, backend, report)
        if detail is not None:
            return fail("warm-start", detail)

    for name, checker in mm.METAMORPHIC_CHECKS.items():
        if name not in enabled:
            continue
        report.count(name)
        try:
            detail = checker(
                case.program, assistant_config, base=result
            )
        except Exception as exc:
            detail = f"check crashed: {type(exc).__name__}: {exc}"
        if detail is not None:
            return fail(name, detail)
    return None
