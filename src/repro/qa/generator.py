"""Seeded random program generator over the frontend AST.

Emits affine loop nests in the exact Fortran-77 subset the parser accepts:
a configurable number of arrays (with configurable ranks), phase loops
(perfect nests whose induction variables index the arrays), optional
control loops (time loops whose variable never appears in a subscript),
and optional IF branches around phases.  Every generated
:class:`~repro.frontend.ast.Program` is printable with the unparser and
parses back to the same tree (modulo source positions), which makes the
generator double as the driver for the printer round-trip property tests.

The grammar (documented in DESIGN.md §8)::

    program    := decls phase-item+
    phase-item := phase | control(phase-item+) | branch(phase-item+)
    phase      := nest over fresh induction vars i1..ir (r = nest depth)
                  of 1..max_stmts assignments
    assign     := A(subs) = rhs
    subs       := pattern drawn per dimension: v | v+c | v-c | n-v+1 | c
    rhs        := sum/product of 0..2 array reads and a literal

All randomness flows through one :class:`random.Random` seeded explicitly,
so a (seed, config) pair is a complete reproducer for any case the fuzzer
reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..frontend import ast
from ..frontend.printer import format_program

#: array-name pool (kept clear of induction vars and the size parameter)
_ARRAY_NAMES = ("a", "b", "c", "d", "e", "f", "g", "h")
#: induction-variable pool, indexed by nest depth
_LOOP_VARS = ("i", "j", "k", "l", "m")
#: control-loop (time-loop) variables — never used in subscripts
_CONTROL_VARS = ("t", "t2", "t3")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random program generator.

    The defaults match the exhaustive-oracle scope (small instances): at
    most 3 arrays of rank <= 3 over at most 4 phases, which keeps both
    brute-force oracles well inside their enumeration limits.
    """

    max_arrays: int = 3
    max_rank: int = 3
    max_phases: int = 4
    size: int = 8  #: declared extent n of every array dimension
    max_stmts_per_phase: int = 2
    max_shift: int = 2  #: largest |c| in v+c / v-c subscript patterns
    p_control_loop: float = 0.25  #: chance of wrapping a run of phases
    p_branch: float = 0.2  #: chance of guarding a run of phases with IF
    p_constant_subscript: float = 0.1
    p_reversal: float = 0.1  #: chance of an n-v+1 subscript
    p_transpose: float = 0.35  #: chance of permuting read index order
    dtype: str = "real"

    def small(self) -> "GeneratorConfig":
        """Clamp to the oracle-checkable regime (<=3/<=3/<=4)."""
        return replace(
            self,
            max_arrays=min(self.max_arrays, 3),
            max_rank=min(self.max_rank, 3),
            max_phases=min(self.max_phases, 4),
        )


@dataclass
class GeneratedCase:
    """A generated program plus everything needed to reproduce it."""

    seed: int
    config: GeneratorConfig
    program: ast.Program
    source: str = field(default="")

    def __post_init__(self) -> None:
        if not self.source:
            self.source = format_program(self.program)


def _subscript(
    rng: random.Random,
    var: str,
    config: GeneratorConfig,
) -> ast.Expr:
    """One affine subscript expression over ``var`` (or a constant)."""
    roll = rng.random()
    if roll < config.p_constant_subscript:
        return ast.IntLit(rng.randint(1, config.size))
    if roll < config.p_constant_subscript + config.p_reversal:
        # n - v + 1 : reversal, stays affine with coefficient -1
        return ast.BinOp(
            "+",
            ast.BinOp("-", ast.Var("n"), ast.Var(var)),
            ast.IntLit(1),
        )
    shift = rng.randint(-config.max_shift, config.max_shift)
    if shift == 0:
        return ast.Var(var)
    op = "+" if shift > 0 else "-"
    return ast.BinOp(op, ast.Var(var), ast.IntLit(abs(shift)))


def _array_ref(
    rng: random.Random,
    array: str,
    rank: int,
    loop_vars: Tuple[str, ...],
    config: GeneratorConfig,
    transpose_ok: bool,
) -> ast.ArrayRef:
    """Reference ``array`` using the innermost ``rank`` loop variables
    (optionally permuted, modelling transposed accesses)."""
    vars_for_dims = list(loop_vars[-rank:]) if rank <= len(loop_vars) else (
        list(loop_vars) + [loop_vars[-1]] * (rank - len(loop_vars))
    )
    if transpose_ok and len(vars_for_dims) > 1 and (
        rng.random() < config.p_transpose
    ):
        rng.shuffle(vars_for_dims)
    subs = tuple(
        _subscript(rng, v, config) for v in vars_for_dims
    )
    return ast.ArrayRef(array, subs)


def _rhs(
    rng: random.Random,
    arrays: Dict[str, int],
    target: str,
    loop_vars: Tuple[str, ...],
    config: GeneratorConfig,
) -> ast.Expr:
    """Right-hand side: a literal plus up to two array reads."""
    expr: ast.Expr = ast.RealLit(float(rng.randint(1, 9)))
    names = sorted(arrays)
    for _ in range(rng.randint(0, 2)):
        array = rng.choice(names)
        ref = _array_ref(
            rng, array, arrays[array], loop_vars, config, transpose_ok=True
        )
        op = rng.choice(("+", "*"))
        expr = ast.BinOp(op, ref, expr)
    return expr


def _phase(
    rng: random.Random,
    arrays: Dict[str, int],
    config: GeneratorConfig,
) -> ast.Stmt:
    """One phase: a loop nest whose body assigns into a random array."""
    target = rng.choice(sorted(arrays))
    rank = arrays[target]
    depth = max(
        rank,
        rng.randint(1, min(config.max_rank, len(_LOOP_VARS))),
    )
    depth = min(depth, len(_LOOP_VARS))
    loop_vars = tuple(_LOOP_VARS[:depth])

    body: List[ast.Stmt] = []
    for _ in range(rng.randint(1, config.max_stmts_per_phase)):
        tgt = rng.choice(sorted(arrays))
        lhs = _array_ref(
            rng, tgt, arrays[tgt], loop_vars, config, transpose_ok=False
        )
        body.append(
            ast.Assign(target=lhs, expr=_rhs(
                rng, arrays, tgt, loop_vars, config
            ))
        )

    nest: Tuple[ast.Stmt, ...] = tuple(body)
    for var in reversed(loop_vars):
        nest = (
            ast.Do(
                var=var,
                lo=ast.IntLit(1),
                hi=ast.Var("n"),
                step=None,
                body=nest,
            ),
        )
    return nest[0]


def _structure(
    rng: random.Random,
    phases: List[ast.Stmt],
    config: GeneratorConfig,
    control_depth: int = 0,
) -> Tuple[ast.Stmt, ...]:
    """Arrange phase loops into a body, optionally nesting runs of them
    inside control loops or IF branches."""
    if not phases:
        return ()
    out: List[ast.Stmt] = []
    idx = 0
    while idx < len(phases):
        run = rng.randint(1, len(phases) - idx)
        chunk = phases[idx:idx + run]
        idx += run
        roll = rng.random()
        if (
            roll < config.p_control_loop
            and control_depth < len(_CONTROL_VARS)
            and len(chunk) >= 1
        ):
            out.append(
                ast.Do(
                    var=_CONTROL_VARS[control_depth],
                    lo=ast.IntLit(1),
                    hi=ast.IntLit(rng.randint(2, 4)),
                    step=None,
                    body=tuple(chunk),
                )
            )
        elif roll < config.p_control_loop + config.p_branch:
            out.append(
                ast.If(
                    cond=ast.BinOp(">", ast.Var("s"), ast.RealLit(0.0)),
                    then_body=tuple(chunk),
                )
            )
        else:
            out.extend(chunk)
    return tuple(out)


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """Generate one random program, deterministically from ``seed``."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)

    n_arrays = rng.randint(1, config.max_arrays)
    arrays: Dict[str, int] = {}
    for name in _ARRAY_NAMES[:n_arrays]:
        arrays[name] = rng.randint(1, config.max_rank)
    # At least one array of maximal generated rank drives the template.

    n_phases = rng.randint(1, config.max_phases)
    phases = [_phase(rng, arrays, config) for _ in range(n_phases)]
    body = _structure(rng, phases, config)

    entities = tuple(
        ast.Entity(
            name=name,
            dims=tuple(
                ast.DimSpec(lo=ast.IntLit(1), hi=ast.Var("n"))
                for _ in range(rank)
            ),
        )
        for name, rank in sorted(arrays.items())
    )
    scalar_ints = tuple(
        ast.Entity(name=v)
        for v in (_LOOP_VARS[: min(config.max_rank, len(_LOOP_VARS))]
                  + _CONTROL_VARS)
    )
    declarations: Tuple[ast.Declaration, ...] = (
        ast.TypeDecl(dtype="integer", entities=(ast.Entity("n"),)),
        ast.ParameterDecl(bindings=(("n", ast.IntLit(config.size)),)),
        ast.TypeDecl(dtype="integer", entities=scalar_ints),
        ast.TypeDecl(dtype=config.dtype, entities=entities),
        ast.TypeDecl(dtype=config.dtype, entities=(ast.Entity("s"),)),
    )
    program = ast.Program(
        name=f"fuzz{seed % 1_000_000}",
        declarations=declarations,
        body=body,
    )
    return GeneratedCase(seed=seed, config=config, program=program)


# ---------------------------------------------------------------------------
# Normalization (for round-trip comparison)
# ---------------------------------------------------------------------------


def _strip_expr(expr: ast.Expr) -> ast.Expr:
    """Expressions carry no positions; returned unchanged (hook kept for
    symmetry and future node kinds)."""
    return expr


def _strip_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.Assign):
        return ast.Assign(target=stmt.target, expr=stmt.expr)
    if isinstance(stmt, ast.Do):
        body = tuple(_strip_stmt(s) for s in stmt.body)
        # Printing normalizes labelled loops to ENDDO form and drops the
        # label-carrying trailing CONTINUE.
        if stmt.label is not None and body and isinstance(
            body[-1], ast.Continue
        ):
            body = body[:-1]
        return ast.Do(
            var=stmt.var, lo=stmt.lo, hi=stmt.hi, step=stmt.step,
            body=body, label=None,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=stmt.cond,
            then_body=tuple(_strip_stmt(s) for s in stmt.then_body),
            else_body=tuple(_strip_stmt(s) for s in stmt.else_body),
        )
    if isinstance(stmt, ast.Continue):
        return ast.Continue()
    if isinstance(stmt, ast.CallStmt):
        return ast.CallStmt(name=stmt.name, args=stmt.args)
    raise TypeError(f"cannot normalize {type(stmt).__name__}")


def _strip_declaration(decl: ast.Declaration) -> ast.Declaration:
    if isinstance(decl, ast.TypeDecl):
        return ast.TypeDecl(dtype=decl.dtype, entities=decl.entities)
    if isinstance(decl, ast.DimensionDecl):
        return ast.DimensionDecl(entities=decl.entities)
    if isinstance(decl, ast.ParameterDecl):
        return ast.ParameterDecl(bindings=decl.bindings)
    raise TypeError(f"cannot normalize {type(decl).__name__}")


def normalize_program(program: ast.Program) -> ast.Program:
    """Erase source positions (and label-form artifacts) so structurally
    identical programs compare equal: ``parse(print(p))`` must equal
    ``normalize_program(p)`` for every printable ``p``."""
    return ast.Program(
        name=program.name,
        declarations=tuple(
            _strip_declaration(d) for d in program.declarations
        ),
        body=tuple(_strip_stmt(s) for s in program.body),
    )
