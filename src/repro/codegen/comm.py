"""Communication classification for the compiler model.

Given one assignment statement, its loop nest, and a candidate layout,
decide — exactly as the target Fortran D compiler would — where
communication is required and of which pattern:

* **shift** — read offset by a constant along a distributed dimension
  (nearest-neighbour boundary exchange, message-vectorized out of the
  loops);
* **broadcast** — read of a fixed position along a distributed dimension
  (the owner broadcasts a slab) or of data every processor needs;
* **gather** — read whose distributed-dimension subscript runs over a
  *different* loop variable than the owner's partition variable (a
  transpose-like, all-to-all pattern: the classic cost of an unsatisfied
  alignment preference);
* **reduction** — array data combined into a scalar;
* **pipeline** — a loop-carried flow dependence crossing the distributed
  dimension: not vectorizable; the phase executes as a pipeline whose
  granularity is fixed by the loop order (the modelled compiler performs
  no loop interchange or coarse-grain pipelining).

Message vectorization hoists every non-pipeline message out of the loop
nest; message coalescing dedupes events with identical
(array, dimension, pattern, offset) keys.

Stride/buffering follows Fortran column-major storage: a message slab with
its *first* array dimension fixed is strided and must be buffered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.dependence import _pair_dependences
from ..analysis.references import ArrayAccess
from ..distribution.layouts import DataLayout, block_bounds, block_owner
from ..frontend.symbols import ArraySymbol, SymbolTable


# --------------------------------------------------------------------------
# Communication events (all message-vectorized, i.e. per phase execution)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShiftComm:
    """Nearest-neighbour exchange of a boundary slab."""

    array: str
    template_dim: int
    offset: int  # +1: data flows from higher block to lower, etc.
    nbytes: int  # per processor
    buffered: bool
    #: processors along the exchanging dimension (= machine size for the
    #: prototype's 1-D distributions)
    procs: int = 0


@dataclass(frozen=True)
class BroadcastComm:
    """Owner broadcasts a slab along the distributed dimension."""

    array: str
    template_dim: int
    nbytes: int
    buffered: bool
    procs: int = 0


@dataclass(frozen=True)
class GatherComm:
    """Transpose-like all-to-all of the array's local share (misaligned
    read or fully-replicated consumer of distributed data)."""

    array: str
    template_dim: int
    local_bytes: int  # per-processor share exchanged
    buffered: bool
    procs: int = 0


@dataclass(frozen=True)
class ReductionComm:
    """Combine per-processor partial results into a scalar (then made
    available everywhere, as the Fortran D compiler does)."""

    nbytes: int


CommEvent = ShiftComm | BroadcastComm | GatherComm | ReductionComm


@dataclass(frozen=True)
class PipelineSpec:
    """A statement executing as a (possibly degenerate) pipeline."""

    array: str
    template_dim: int
    var: str  # partitioned loop variable carrying the dependence
    distance: int
    #: product of trip counts of loops *outside* var (pipeline stages);
    #: 1 means the computation is fully sequentialized across processors
    stages: int
    #: product of trip counts of loops *inside* var
    inner_iters: int
    #: per-stage boundary message size in bytes
    msg_bytes: int
    buffered: bool
    #: +1: values flow from lower to higher blocks (forward sweep);
    #: -1: backward sweep, the chain runs from the last processor down
    direction: int = 1
    #: times the processor ring is traversed per stage: 1 for BLOCK;
    #: CYCLIC / BLOCK-CYCLIC hand the chain around once per ownership
    #: block, multiplying the hand-off count
    rounds: int = 1
    #: length of the dependence chain: processors along the carried
    #: dimension (the full machine under 1-D distributions; one grid
    #: axis under multi-dimensional ones, with the orthogonal axes
    #: running independent chains in parallel)
    chain_procs: int = 0

    @property
    def sequentialized(self) -> bool:
        return self.stages <= 1


@dataclass(frozen=True)
class PartitionDim:
    """Owner-computes partitioning of the iteration space along one
    distributed template dimension."""

    template_dim: int
    procs: int
    extent: int  # extent of the write's array dimension aligned here
    kind: str  # block | cyclic | block_cyclic
    block: int  # ownership block size (0 = ceil(extent/procs), 1 = cyclic)
    #: loop variable indexing the dimension (None: fixed position)
    var: Optional[str]
    coeff: int
    const: int
    #: fixed position when var is None (a "localized" write)
    localized_index: Optional[int] = None

    def ownership_block(self) -> int:
        if self.kind == "block" and self.block == 0:
            return -(-self.extent // self.procs)
        return max(self.block, 1)


@dataclass
class StmtPlan:
    """Everything the code generator / estimator needs for one statement.

    The scalar ``partition_*`` fields describe the *primary* partitioned
    dimension (the only one under the prototype's 1-D distributions);
    ``partitions`` carries the full per-dimension picture for
    multi-dimensional layouts, and ``grid`` the layout's whole processor
    arrangement as ``(template_dim, procs)`` in template-dim order.
    """

    write: ArrayAccess
    #: cost of one iteration of the statement body (microseconds)
    per_iter_cost: float
    #: loop variable partitioned by owner-computes (None: not partitioned)
    partition_var: Optional[str]
    partition_dim: Optional[int]  # template dim of the partitioning
    partition_coeff: int  # subscript coefficient a in a*v + c
    partition_const: int
    #: the write lands at one fixed position along the distributed dim
    localized_owner_index: Optional[int]
    #: the write's array is not distributed: all processors execute it
    replicated_write: bool
    comms: List[CommEvent]
    pipeline: Optional[PipelineSpec]
    #: trips of all loops, outermost first: (var, trips)
    loop_trips: Tuple[Tuple[str, int], ...]
    guard_probability: float
    #: distribution format of the partitioned dimension
    partition_kind: str = "block"
    #: ownership block size (BLOCK-CYCLIC block size; 1 for CYCLIC;
    #: 0 means ceil(extent / procs), i.e. plain BLOCK)
    partition_block: int = 0
    #: all partitioned dimensions (multi-dimensional layouts)
    partitions: Tuple[PartitionDim, ...] = ()
    #: processor grid of the layout: (template_dim, procs) per
    #: distributed template dimension, in template-dim order
    grid: Tuple[Tuple[int, int], ...] = ()

    # -- processor-grid helpers --------------------------------------------

    def grid_coords(self, rank: int) -> Dict[int, int]:
        """Decompose a linear rank into per-template-dim coordinates
        (row-major over ``grid``)."""
        coords: Dict[int, int] = {}
        remaining = rank
        for tdim, procs in reversed(self.grid):
            coords[tdim] = remaining % procs
            remaining //= procs
        return coords

    def grid_rank(self, coords: Dict[int, int]) -> int:
        rank = 0
        for tdim, procs in self.grid:
            rank = rank * procs + coords.get(tdim, 0)
        return rank

    def partition_for(self, tdim: int) -> Optional[PartitionDim]:
        for pd in self.partitions:
            if pd.template_dim == tdim:
                return pd
        return None

    def total_iterations(self) -> int:
        total = 1
        for _var, trips in self.loop_trips:
            total *= trips
        return total

    def other_iterations(self) -> int:
        """Iterations of all loops except the partitioned one."""
        total = 1
        for var, trips in self.loop_trips:
            if var != self.partition_var:
                total *= trips
        return total

    def ownership_block(self, extent: int, procs: int) -> int:
        """Contiguously-owned run length along the partitioned dimension."""
        if self.partition_kind == "block" and self.partition_block == 0:
            return -(-extent // procs)
        return max(self.partition_block, 1)

    def partition_divisor(self) -> int:
        """Product of processor counts over all variable-partitioned
        dimensions (the parallelism owner-computes extracts)."""
        divisor = 1
        for pd in self.partitions:
            if pd.var is not None:
                divisor *= pd.procs
        return max(divisor, 1)

    def local_iters_rank(self, rank: int) -> int:
        """Exact per-processor iteration count for any grid shape."""
        from ..distribution.layouts import owner_of_index

        total = self.total_iterations()
        if self.replicated_write or not self.partitions:
            return total
        coords = self.grid_coords(rank)
        # Fixed-position dimensions: only the owning coordinate executes.
        for pd in self.partitions:
            if pd.var is None and pd.localized_index is not None:
                owner = owner_of_index(
                    pd.kind, pd.localized_index, pd.extent, pd.procs,
                    pd.block,
                )
                if coords.get(pd.template_dim, 0) != owner:
                    return 0
        local = 1
        for var, trips in self.loop_trips:
            pd = next(
                (p for p in self.partitions if p.var == var), None
            )
            if pd is None:
                local *= trips
                continue
            loop = next(
                l for l in self.write.loops if l.var == var
            )
            coord = coords.get(pd.template_dim, 0)
            if pd.kind == "block":
                lo, hi = block_bounds(coord, pd.extent, pd.procs)
                count = _owned_iterations(
                    loop.lo, loop.hi, loop.step, pd.coeff, pd.const, lo, hi
                )
            else:
                count = _owned_iterations_interleaved(
                    loop.lo, loop.hi, loop.step, pd.coeff, pd.const,
                    pd.kind, coord, pd.extent, pd.procs, pd.block,
                )
            local *= count
        return local

    def local_iterations(self, proc: int, extent: int, procs: int) -> int:
        """Exact per-processor iteration count under owner-computes,
        including boundary-processor irregularity (BLOCK) and cyclic
        interleaving (CYCLIC / BLOCK-CYCLIC)."""
        from ..distribution.layouts import owner_of_index

        if self.replicated_write:
            return self.total_iterations()
        if self.localized_owner_index is not None:
            # Only the owner of the fixed index executes.
            owner = owner_of_index(
                self.partition_kind, self.localized_owner_index, extent,
                procs, self.partition_block,
            )
            return self.total_iterations() if owner == proc else 0
        if self.partition_var is None:
            return self.total_iterations()
        local = 1
        for var, trips in self.loop_trips:
            if var != self.partition_var:
                local *= trips
                continue
            loop = next(
                l for l in self.write.loops if l.var == self.partition_var
            )
            if self.partition_kind == "block":
                lo, hi = block_bounds(proc, extent, procs)
                count = _owned_iterations(
                    loop.lo, loop.hi, loop.step,
                    self.partition_coeff, self.partition_const, lo, hi,
                )
            else:
                count = _owned_iterations_interleaved(
                    loop.lo, loop.hi, loop.step,
                    self.partition_coeff, self.partition_const,
                    self.partition_kind, proc, extent, procs,
                    self.partition_block,
                )
            local *= count
        return local


def _owned_iterations(
    loop_lo: Optional[int],
    loop_hi: Optional[int],
    step: int,
    coeff: int,
    const: int,
    block_lo: int,
    block_hi: int,
) -> int:
    """#{v in [loop_lo..loop_hi] (by step) : block_lo <= coeff*v + const <=
    block_hi}."""
    if loop_lo is None or loop_hi is None or coeff == 0:
        return 0
    lo, hi = sorted((loop_lo, loop_hi))
    # Solve block_lo <= coeff*v + const <= block_hi for v.
    if coeff > 0:
        v_lo = -(-(block_lo - const) // coeff)  # ceil
        v_hi = (block_hi - const) // coeff
    else:
        v_lo = -(-(block_hi - const) // coeff)
        v_hi = (block_lo - const) // coeff
    v_lo = max(v_lo, lo)
    v_hi = min(v_hi, hi)
    if v_hi < v_lo:
        return 0
    return (v_hi - v_lo) // abs(step or 1) + 1


def _owned_iterations_interleaved(
    loop_lo: Optional[int],
    loop_hi: Optional[int],
    step: int,
    coeff: int,
    const: int,
    kind: str,
    proc: int,
    extent: int,
    procs: int,
    block: int,
) -> int:
    """#{v in the loop range : owner(coeff*v + const) == proc} under a
    CYCLIC / BLOCK-CYCLIC format (exact, by enumeration — loop extents in
    the supported programs are small)."""
    from ..distribution.layouts import owner_of_index

    if loop_lo is None or loop_hi is None:
        return 0
    lo, hi = sorted((loop_lo, loop_hi))
    count = 0
    for v in range(lo, hi + 1, abs(step or 1)):
        idx = coeff * v + const
        if 1 <= idx <= extent and owner_of_index(
            kind, idx, extent, procs, block
        ) == proc:
            count += 1
    return count


def _slab_buffered(symbol: ArraySymbol, fixed_dim: int) -> bool:
    """A slab with array dimension ``fixed_dim`` held constant is strided
    (needs buffering) unless the fixed dimension is the slowest-varying
    one — Fortran is column-major, so dimension 0 varies fastest."""
    if symbol.rank == 1:
        return False
    return fixed_dim != symbol.rank - 1


def plan_statement(
    accesses: Sequence[ArrayAccess],
    layout: DataLayout,
    symbols: SymbolTable,
    per_iter_cost: float,
) -> Optional[StmtPlan]:
    """Build the communication/partitioning plan of one statement.

    ``accesses`` are all array accesses of a single statement (one write at
    most — Fortran assignments).  Returns None for statements without array
    accesses.
    """
    writes = [a for a in accesses if a.is_write]
    reads = [a for a in accesses if not a.is_write]
    if not writes and not reads:
        return None

    # Scalar-target statements (reductions) have no write access recorded.
    write = writes[0] if writes else None
    sample = write if write is not None else reads[0]
    loop_trips = tuple(
        (loop.var, loop.trip_count or 1) for loop in sample.loops
    )
    guard = sample.guard_probability

    dist_dims = layout.distribution.distributed_dims()
    comms: List[CommEvent] = []
    pipeline: Optional[PipelineSpec] = None

    if write is None:
        # Reduction into a scalar: everyone computes its local share of the
        # *reads*; partition by the first distributed read if possible.
        plan = StmtPlan(
            write=sample,
            per_iter_cost=per_iter_cost,
            partition_var=None,
            partition_dim=None,
            partition_coeff=1,
            partition_const=0,
            localized_owner_index=None,
            replicated_write=False,
            comms=[],
            pipeline=None,
            loop_trips=loop_trips,
            guard_probability=guard,
        )
        _partition_by_read(plan, reads, layout, symbols)
        scalar_bytes = 8
        plan.comms.append(ReductionComm(nbytes=scalar_bytes))
        _plan_reads(plan, reads, layout, symbols, comms_out=plan.comms)
        return plan

    wsym = symbols.array(write.array)
    partition_var: Optional[str] = None
    partition_dim: Optional[int] = None
    partition_coeff, partition_const = 1, 0
    partition_kind, partition_block = "block", 0
    localized: Optional[int] = None
    wdist = layout.distributed_array_dims(write.array)
    replicated_write = not wdist
    grid = tuple(
        (tdim, layout.distribution.dims[tdim].procs)
        for tdim in layout.distribution.distributed_dims()
    )

    partitions: List[PartitionDim] = []
    for adim, tdim, procs_here in wdist:
        sub = write.subscripts[adim]
        dim_dist = layout.distribution.dims[tdim]
        kind_here = dim_dist.kind
        block_here = 1 if kind_here == "cyclic" else dim_dist.block
        var = sub.single_index_var()
        if var is not None and any(v == var for v, _ in loop_trips):
            partitions.append(
                PartitionDim(
                    template_dim=tdim,
                    procs=procs_here,
                    extent=wsym.extents[adim],
                    kind=kind_here,
                    block=block_here,
                    var=var,
                    coeff=sub.coeff(var),
                    const=sub.const,
                )
            )
            # primary partition: used by the 1-D fast paths and reports
            partition_var = var
            partition_dim = tdim
            partition_coeff = sub.coeff(var)
            partition_const = sub.const
            partition_kind = kind_here
            partition_block = block_here
        elif sub.is_constant():
            partitions.append(
                PartitionDim(
                    template_dim=tdim,
                    procs=procs_here,
                    extent=wsym.extents[adim],
                    kind=kind_here,
                    block=block_here,
                    var=None,
                    coeff=0,
                    const=sub.const,
                    localized_index=sub.const,
                )
            )
            if partition_var is None:
                localized = sub.const
                partition_dim = tdim
                partition_kind = kind_here
                partition_block = block_here

    plan = StmtPlan(
        write=write,
        per_iter_cost=per_iter_cost,
        partition_var=partition_var,
        partition_dim=partition_dim,
        partition_coeff=partition_coeff,
        partition_const=partition_const,
        localized_owner_index=localized,
        replicated_write=replicated_write,
        comms=comms,
        pipeline=None,
        loop_trips=loop_trips,
        guard_probability=guard,
        partition_kind=partition_kind,
        partition_block=partition_block,
        partitions=tuple(partitions),
        grid=grid,
    )

    # Detect a flow dependence crossing a distributed dimension -> the
    # statement pipelines (or sequentializes) instead of pre-communicating.
    # Under multi-dimensional grids the chain runs along the carried
    # dimension while the orthogonal partitioned dimensions run their own
    # chains in parallel — stages, chunk and message sizes are per-chain.
    var_partitions = [pd for pd in partitions if pd.var is not None]
    var_of = {pd.var: pd for pd in var_partitions}
    if var_partitions:
        for read in reads:
            if read.array != write.array:
                continue
            for dep in _pair_dependences(write, read):
                pd = var_of.get(dep.carrier_var)
                if dep.kind != "flow" or pd is None:
                    continue
                adim = dep.dim
                stages = 1
                inner = 1
                seen_var = False
                for var, trips in loop_trips:
                    if var == pd.var:
                        seen_var = True
                        continue
                    other = var_of.get(var)
                    local_trips = (
                        -(-trips // other.procs) if other is not None
                        else trips
                    )
                    if seen_var:
                        inner *= local_trips
                    else:
                        stages *= local_trips
                elem = wsym.element_bytes
                msg_bytes = dep.distance * inner * elem
                # Element-space flow direction: write at a*v + c_w feeds a
                # read at a*v + c_r; positive (c_w - c_r)/a means values
                # flow toward higher indices (forward sweep).
                w_sub = dep.source.subscripts[dep.dim]
                r_sub = dep.sink.subscripts[dep.dim]
                coeff_sign = 1 if pd.coeff >= 0 else -1
                direction = 1 if (w_sub.const - r_sub.const) * coeff_sign > 0 \
                    else -1
                # CYCLIC / BLOCK-CYCLIC interleaving hands the dependence
                # chain around the ring once per ownership block.
                if pd.kind == "block":
                    rounds = 1
                else:
                    rounds = max(
                        -(-pd.extent // (pd.procs * max(pd.block, 1))), 1
                    )
                plan.pipeline = PipelineSpec(
                    array=write.array,
                    template_dim=pd.template_dim,
                    var=pd.var,
                    distance=dep.distance,
                    stages=stages,
                    inner_iters=inner,
                    msg_bytes=max(msg_bytes, elem),
                    buffered=_slab_buffered(wsym, adim) and inner > 1,
                    direction=direction,
                    rounds=rounds,
                    chain_procs=pd.procs,
                )
                break
            if plan.pipeline is not None:
                break

    _plan_reads(plan, reads, layout, symbols, comms_out=comms)
    return plan


def _partition_by_read(
    plan: StmtPlan,
    reads: Sequence[ArrayAccess],
    layout: DataLayout,
    symbols: SymbolTable,
) -> None:
    """For scalar-target statements: partition iterations by the first
    distributed read array (the Fortran D reduction mapping), along every
    grid dimension the read covers."""
    plan.grid = tuple(
        (tdim, layout.distribution.dims[tdim].procs)
        for tdim in layout.distribution.distributed_dims()
    )
    for read in reads:
        symbol = symbols.get(read.array)
        if not isinstance(symbol, ArraySymbol):
            continue
        partitions: List[PartitionDim] = []
        for adim, tdim, procs in layout.distributed_array_dims(read.array):
            sub = read.subscripts[adim]
            dim_dist = layout.distribution.dims[tdim]
            var = sub.single_index_var()
            if var is None:
                continue
            partitions.append(
                PartitionDim(
                    template_dim=tdim,
                    procs=procs,
                    extent=symbol.extents[adim],
                    kind=dim_dist.kind,
                    block=1 if dim_dist.kind == "cyclic" else dim_dist.block,
                    var=var,
                    coeff=sub.coeff(var),
                    const=sub.const,
                )
            )
        if partitions:
            primary = partitions[-1]
            plan.partition_var = primary.var
            plan.partition_dim = primary.template_dim
            plan.partition_coeff = primary.coeff
            plan.partition_const = primary.const
            plan.partition_kind = primary.kind
            plan.partition_block = primary.block
            plan.partitions = tuple(partitions)
            # Reuse the read's loops for local-iteration queries.
            plan.write = read
            return


def _plan_reads(
    plan: StmtPlan,
    reads: Sequence[ArrayAccess],
    layout: DataLayout,
    symbols: SymbolTable,
    comms_out: List[CommEvent],
) -> None:
    """Classify every read's communication requirement (vectorized +
    coalesced).

    Case analysis per (read, distributed template dim ``tdim``):

    1. iterations are *partitioned* along ``tdim`` by loop variable ``v``:
       - read indexed by ``v`` with the write's coefficient: aligned up to
         a constant offset → local (0) or **shift** (≠0);
       - read indexed by ``v`` with a different coefficient, or by some
         other loop variable: **gather** (transpose-like misalignment);
       - read at a constant position: every processor needs the owner's
         slab → **broadcast**;
    2. iterations are *not* partitioned along ``tdim`` (replicated or
       localized write, or a different partition dim): the executing
       processor(s) span the whole dimension:
       - read at a constant position: remote only if the writing owner
         differs from the reading owner (then a slab **broadcast**, which
         also covers the localized point-to-point case);
       - otherwise the full distributed array is needed → **gather**.
    """
    seen_keys = set()
    for read in reads:
        symbol = symbols.get(read.array)
        if not isinstance(symbol, ArraySymbol):
            continue
        if plan.pipeline is not None and read.array == plan.pipeline.array:
            continue  # handled by the pipeline schedule
        for adim, tdim, procs in layout.distributed_array_dims(read.array):
            sub = read.subscripts[adim]
            elem = symbol.element_bytes
            other_extent = symbol.element_count // symbol.extents[adim]
            extent = symbol.extents[adim]
            pd = plan.partition_for(tdim)
            partitioned_here = pd is not None and pd.var is not None
            #: processors local to every read slab (orthogonal grid axes
            #: split the data, shrinking per-processor slabs)
            other_divisor = 1
            for pd2 in plan.partitions:
                if pd2.template_dim != tdim and pd2.var is not None:
                    other_divisor *= pd2.procs
            if partitioned_here:
                var = sub.single_index_var()
                if var == pd.var:
                    if sub.coeff(var) == pd.coeff:
                        delta = sub.const - pd.const
                        if delta == 0:
                            continue  # perfectly aligned: local access
                        key = (read.array, tdim, "shift", delta)
                        if key in seen_keys:
                            continue  # message coalescing
                        seen_keys.add(key)
                        # Boundary volume: |delta| elements per owned
                        # contiguous run.  BLOCK owns one run; CYCLIC /
                        # BLOCK-CYCLIC own extent/(P*b) runs each.
                        run = pd.ownership_block()
                        runs = max(-(-extent // (procs * run)), 1)
                        boundary = min(abs(delta), run) * runs
                        nbytes = max(
                            boundary * other_extent * elem // other_divisor,
                            elem,
                        )
                        comms_out.append(
                            ShiftComm(
                                array=read.array,
                                template_dim=tdim,
                                offset=delta,
                                nbytes=nbytes,
                                buffered=_slab_buffered(symbol, adim),
                                procs=procs,
                            )
                        )
                    else:
                        _add_gather(plan, comms_out, seen_keys, read.array,
                                    tdim, symbol, procs, "gather-coeff")
                    continue
                if sub.is_constant():
                    key = (read.array, tdim, "bcast", sub.const)
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    comms_out.append(
                        BroadcastComm(
                            array=read.array,
                            template_dim=tdim,
                            nbytes=max(other_extent * elem // other_divisor,
                                       elem),
                            buffered=_slab_buffered(symbol, adim),
                            procs=procs,
                        )
                    )
                    continue
                # Distributed dimension indexed by a non-partition
                # variable: transpose-like all-to-all (the classic
                # alignment-conflict penalty).
                _add_gather(plan, comms_out, seen_keys, read.array, tdim,
                            symbol, procs, "gather-misaligned")
                continue
            # Not partitioned along tdim.
            localized_here = (
                pd is not None and pd.localized_index is not None
            )
            if sub.is_constant() and localized_here:
                # Both slabs sit on the same template dimension, so the
                # same ownership map decides both owners.
                from ..distribution.layouts import owner_of_index

                read_owner = owner_of_index(
                    pd.kind, sub.const, extent, procs, pd.block
                )
                write_owner = owner_of_index(
                    pd.kind, pd.localized_index, extent, procs, pd.block
                )
                if read_owner == write_owner:
                    continue  # both slabs live on the same processor
                key = (read.array, tdim, "bcast", sub.const)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                comms_out.append(
                    BroadcastComm(
                        array=read.array,
                        template_dim=tdim,
                        nbytes=other_extent * elem,
                        buffered=_slab_buffered(symbol, adim),
                        procs=procs,
                    )
                )
                continue
            if sub.is_constant():
                key = (read.array, tdim, "bcast", sub.const)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                comms_out.append(
                    BroadcastComm(
                        array=read.array,
                        template_dim=tdim,
                        nbytes=other_extent * elem,
                        buffered=_slab_buffered(symbol, adim),
                        procs=procs,
                    )
                )
                continue
            _add_gather(plan, comms_out, seen_keys, read.array, tdim,
                        symbol, procs, "gather-replicated")


def _add_gather(
    plan: StmtPlan,
    comms_out: List[CommEvent],
    seen_keys: set,
    array: str,
    tdim: int,
    symbol: ArraySymbol,
    procs: int,
    tag: str,
) -> None:
    key = (array, tdim, tag)
    if key in seen_keys:
        return
    seen_keys.add(key)
    # The array's true per-processor share: divide by every grid axis it
    # is distributed over (not just the one being gathered along).
    divisor = procs
    for pd2 in plan.partitions:
        if pd2.template_dim != tdim and pd2.var is not None:
            divisor *= pd2.procs
    comms_out.append(
        GatherComm(
            array=array,
            template_dim=tdim,
            local_bytes=max(symbol.total_bytes // divisor,
                            symbol.element_bytes),
            buffered=True,
            procs=procs,
        )
    )
