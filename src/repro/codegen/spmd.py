"""SPMD code generation: lower a program + selected layouts to node
programs for the machine simulator.

This plays the role of the Fortran D compiler in the paper's experiments:
given the phase structure and one concrete :class:`DataLayout` per phase,
it produces per-processor operation schedules with

* owner-computes iteration partitioning with exact boundary-processor
  iteration counts;
* message-vectorized and coalesced shift communication before each loop
  nest;
* broadcast / gather / reduction collectives;
* pipeline schedules for cross-processor flow dependences, whose
  granularity follows the source loop order (no interchange, no
  coarse-grain pipelining — the compiler configuration of Section 4);
* lazy **remapping**: when a phase uses an array under a different layout
  than the array currently has, an all-to-all redistribution is emitted
  first (this is what a dynamic layout costs);
* control structure unrolled: control loops replay their bodies, branches
  fire deterministically in proportion to their *actual* probabilities.

Simulating the result gives the experiment's "measured" execution time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.phases import (
    Branch,
    ControlLoop,
    PhaseItem,
    PhasePartition,
    ScalarItem,
    Seq,
)
from ..distribution.layouts import DataLayout, block_bounds
from ..frontend import ast
from ..frontend.symbols import ArraySymbol, SymbolTable
from ..machine.collectives import redistribute_time
from ..machine.node import statement_cost, stmt_dtype
from ..machine.params import MachineParams
from ..machine.patterns import (
    append_alltoall,
    append_broadcast,
    append_reduce_broadcast,
)
from ..machine.simulator import Collective
from .comm import (
    BroadcastComm,
    GatherComm,
    PipelineSpec,
    ReductionComm,
    ShiftComm,
    StmtPlan,
    plan_statement,
)


@dataclass
class CompiledPhase:
    """The per-statement plans of one phase under one layout."""

    phase_index: int
    layout: DataLayout
    plans: List[StmtPlan]


def compile_phase(
    phase,
    layout: DataLayout,
    symbols: SymbolTable,
    params: MachineParams,
) -> CompiledPhase:
    """Plan every statement of ``phase`` under ``layout``."""
    by_stmt: Dict[int, List] = {}
    order: List[int] = []
    stmt_of: Dict[int, ast.Stmt] = {}
    for acc in phase.accesses:
        key = id(acc.stmt)
        if key not in by_stmt:
            by_stmt[key] = []
            order.append(key)
            stmt_of[key] = acc.stmt
        by_stmt[key].append(acc)
    plans: List[StmtPlan] = []
    for key in order:
        stmt = stmt_of[key]
        dtype = stmt_dtype(stmt, symbols) if isinstance(stmt, ast.Assign) \
            else "double"
        cost = statement_cost(stmt, params, symbols, dtype=dtype)
        plan = plan_statement(by_stmt[key], layout, symbols, cost)
        if plan is not None:
            plans.append(plan)
    return CompiledPhase(phase_index=phase.index, layout=layout, plans=plans)


def array_layout_signature(layout: DataLayout, array: str) -> Tuple:
    """Behavioural layout identity of a single array (for remap detection)."""
    dist = tuple(
        (adim, layout.distribution.dims[tdim].kind,
         layout.distribution.dims[tdim].procs,
         layout.distribution.dims[tdim].block)
        for adim, tdim, _p in layout.distributed_array_dims(array)
    )
    repl = tuple(p for _t, p in layout.replicated_over(array))
    return (dist, repl)


class SPMDBuilder:
    """Accumulates per-processor op lists plus the collective registry."""

    def __init__(
        self,
        symbols: SymbolTable,
        params: MachineParams,
        nprocs: int,
        max_pipeline_stages: int = 1024,
    ):
        self.symbols = symbols
        self.params = params
        self.nprocs = nprocs
        self.max_pipeline_stages = max_pipeline_stages
        self.programs: List[List[tuple]] = [[] for _ in range(nprocs)]
        self.collectives: Dict[int, Collective] = {}
        self._next_coll = 0
        self.remap_count = 0
        self.remap_time_total = 0.0

    # -- primitive emitters -------------------------------------------------

    def _compute(self, proc: int, duration: float) -> None:
        if duration > 0.0:
            self.programs[proc].append(("compute", duration))

    # -- remapping ----------------------------------------------------------

    def emit_remap(self, array: str) -> float:
        """Event-level all-to-all redistribution of ``array``; returns the
        analytic duration (for reporting — the simulated cost is emergent)."""
        symbol = self.symbols.array(array)
        local = max(symbol.total_bytes // self.nprocs, 1)
        append_alltoall(self.programs, local, buffered=True)
        duration = redistribute_time(
            self.params, self.nprocs, symbol.total_bytes
        )
        self.remap_count += 1
        self.remap_time_total += duration
        return duration

    # -- processor-grid helpers ---------------------------------------------

    @staticmethod
    def _layout_grid(layout: DataLayout) -> List[Tuple[int, int]]:
        return [
            (tdim, layout.distribution.dims[tdim].procs)
            for tdim in layout.distribution.distributed_dims()
        ]

    def _axis_groups(
        self, layout: DataLayout, tdim: int
    ) -> List[List[int]]:
        """Rank groups along grid axis ``tdim``: one list of ranks (in
        axis-coordinate order) per combination of the other axes'
        coordinates.  A 1-D layout has one group: the whole machine."""
        grid = self._layout_grid(layout)
        if not any(t == tdim for t, _ in grid):
            return [list(range(self.nprocs))]
        others = [(t, p) for t, p in grid if t != tdim]
        axis_procs = next(p for t, p in grid if t == tdim)

        def rank_of(coords: dict) -> int:
            rank = 0
            for t, p in grid:
                rank = rank * p + coords[t]
            return rank

        groups: List[List[int]] = []

        def build(idx: int, coords: dict) -> None:
            if idx == len(others):
                group = []
                for c in range(axis_procs):
                    coords[tdim] = c
                    group.append(rank_of(coords))
                groups.append(group)
                return
            t, p = others[idx]
            for c in range(p):
                coords[t] = c
                build(idx + 1, coords)

        build(0, {})
        return groups

    # -- phase emission -------------------------------------------------------

    def emit_phase(self, compiled: CompiledPhase) -> None:
        nprocs = self.nprocs
        layout = compiled.layout

        # 1. Hoisted communication, coalesced across the whole phase.
        #    Each event involves the processor groups along its template
        #    dimension; under a 1-D distribution that is the machine.
        events = []
        seen = set()
        for plan in compiled.plans:
            for event in plan.comms:
                if event not in seen:
                    seen.add(event)
                    events.append(event)
        for event in events:
            if isinstance(event, ShiftComm):
                self._emit_shift(event, layout)
            elif isinstance(event, BroadcastComm):
                for group in self._axis_groups(layout, event.template_dim):
                    append_broadcast(self.programs, event.nbytes,
                                     buffered=event.buffered, ranks=group)
            elif isinstance(event, GatherComm):
                for group in self._axis_groups(layout, event.template_dim):
                    append_alltoall(self.programs, event.local_bytes,
                                    buffered=event.buffered, ranks=group)
            elif isinstance(event, ReductionComm):
                append_reduce_broadcast(
                    self.programs, event.nbytes,
                    combine_cost=event.nbytes * 0.02,
                )

        # 2. Parallel compute of non-pipelined statements.
        for proc in range(nprocs):
            total = 0.0
            for plan in compiled.plans:
                if plan.pipeline is not None:
                    continue
                iters = plan.local_iters_rank(proc)
                total += iters * plan.per_iter_cost * plan.guard_probability
            self._compute(proc, total)

        # 3. Pipelined statements, one after the other.
        for plan in compiled.plans:
            if plan.pipeline is not None:
                self._emit_pipeline(plan, layout)

    def _emit_shift(self, event: ShiftComm, layout: DataLayout) -> None:
        """Boundary exchange along one grid axis: offset < 0 means data
        flows from lower to higher blocks (read of ``v - d``), offset > 0
        the other way.  Orthogonal axes exchange independently."""
        step = 1 if event.offset < 0 else -1
        for group in self._axis_groups(layout, event.template_dim):
            if len(group) <= 1:
                continue
            for pos, proc in enumerate(group):
                dst = pos + step
                if 0 <= dst < len(group):
                    self.programs[proc].append(
                        ("send", group[dst], event.nbytes, event.buffered)
                    )
            for pos, proc in enumerate(group):
                src = pos - step
                if 0 <= src < len(group):
                    self.programs[proc].append(("recv", group[src]))

    def _emit_pipeline(self, plan: StmtPlan, layout: DataLayout) -> None:
        """Pipeline (or sequentialized) execution of a dependent sweep.

        Stage aggregation: when the stage count exceeds
        ``max_pipeline_stages``, ``group`` consecutive stages merge into
        one super-stage.  Per-processor *work* is preserved exactly (the
        per-message software overheads of the merged messages are added to
        the compute time); only the pipeline fill granularity coarsens.
        """
        params = self.params
        pipe = plan.pipeline
        assert pipe is not None

        local_iters = [
            plan.local_iters_rank(p) for p in range(self.nprocs)
        ]
        # Interleaved (cyclic) formats traverse the ring `rounds` times per
        # stage; the hand-off structure is the same chain, repeated.
        stages = max(pipe.stages, 1) * max(pipe.rounds, 1)
        stage_compute = [
            (local_iters[p] / stages)
            * plan.per_iter_cost
            * plan.guard_probability
            for p in range(self.nprocs)
        ]
        group = 1
        if stages > self.max_pipeline_stages:
            group = -(-stages // self.max_pipeline_stages)
        sim_stages = -(-stages // group)
        msg_bytes = pipe.msg_bytes * group
        extra_send = (group - 1) * params.send_overhead(pipe.msg_bytes,
                                                        buffered=pipe.buffered)
        extra_recv = (group - 1) * params.recv_overhead

        # One independent chain per combination of the orthogonal grid
        # coordinates (a single machine-wide chain under 1-D
        # distributions).  Only processors with work join their chain
        # (boundary loops can leave edge blocks empty at large P / small
        # n); the chain follows the sweep's flow direction: backward
        # sweeps start at the highest block.
        for chain in self._axis_groups(layout, pipe.template_dim):
            active = [p for p in chain if local_iters[p] > 0]
            if pipe.direction < 0:
                active.reverse()
            if len(active) <= 1:
                for proc in active:
                    self._compute(proc, stage_compute[proc] * stages)
                continue
            for stage in range(sim_stages):
                this_group = min(group, stages - stage * group)
                for ci, proc in enumerate(active):
                    if ci > 0:
                        self.programs[proc].append(
                            ("recv", active[ci - 1])
                        )
                        if extra_recv > 0.0 and this_group == group:
                            self._compute(proc, extra_recv)
                    self._compute(proc, stage_compute[proc] * this_group)
                    if ci < len(active) - 1:
                        if extra_send > 0.0 and this_group == group:
                            self._compute(proc, extra_send)
                        self.programs[proc].append(
                            ("send", active[ci + 1], msg_bytes,
                             pipe.buffered)
                        )


def compile_program(
    partition: PhasePartition,
    symbols: SymbolTable,
    selected_layouts: Dict[int, DataLayout],
    params: MachineParams,
    nprocs: int,
    max_pipeline_stages: int = 1024,
    branch_actual_probs: Optional[Dict[int, float]] = None,
) -> SPMDBuilder:
    """Lower the whole program, unrolling control structure and inserting
    lazy remaps where the selected layouts change an array's distribution.

    ``branch_actual_probs`` maps control-level Branch objects' positions is
    not needed — branches fire deterministically in proportion to their
    recorded probability (``branch.prob``), which the caller sets to the
    *actual* probability when building the measured run.
    """
    builder = SPMDBuilder(
        symbols=symbols,
        params=params,
        nprocs=nprocs,
        max_pipeline_stages=max_pipeline_stages,
    )
    compiled_cache: Dict[Tuple[int, int], CompiledPhase] = {}
    current_sig: Dict[str, Tuple] = {}
    branch_visits: Dict[int, int] = {}

    def phase_layout(idx: int) -> DataLayout:
        try:
            return selected_layouts[idx]
        except KeyError:
            raise KeyError(
                f"no layout selected for phase {idx}"
            ) from None

    def emit_phase_item(item: PhaseItem) -> None:
        idx = item.phase.index
        layout = phase_layout(idx)
        key = (idx, id(layout))
        if key not in compiled_cache:
            compiled_cache[key] = compile_phase(
                item.phase, layout, symbols, params
            )
        # Lazy remapping: only arrays the phase actually *references* pin
        # (and possibly change) their layout here — an array skipping a
        # phase keeps whatever layout it last had.  Leaving a
        # fully-replicated layout is free (every processor already holds
        # the data); entering one costs an all-gather, priced like the
        # redistribution.
        covered = set(layout.arrays())
        for array in item.phase.arrays:
            if array not in covered:
                continue
            sig = array_layout_signature(layout, array)
            prev = current_sig.get(array)
            if prev is not None and prev != sig and prev[0]:
                builder.emit_remap(array)
            current_sig[array] = sig
        builder.emit_phase(compiled_cache[key])

    def walk(seq: Seq) -> None:
        for item in seq.items:
            if isinstance(item, PhaseItem):
                emit_phase_item(item)
            elif isinstance(item, ScalarItem):
                continue  # negligible scalar straight-line code
            elif isinstance(item, ControlLoop):
                for _ in range(max(item.trips, 0)):
                    walk(item.body)
            elif isinstance(item, Branch):
                visits = branch_visits.get(id(item), 0) + 1
                branch_visits[id(item)] = visits
                taken = math.floor(visits * item.prob) > math.floor(
                    (visits - 1) * item.prob
                )
                walk(item.then_body if taken else item.else_body)

    walk(partition.structure)
    return builder
