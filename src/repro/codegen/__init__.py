"""Compiler model + SPMD lowering (the repo's Fortran D compiler)."""

from .comm import (
    BroadcastComm,
    CommEvent,
    GatherComm,
    PipelineSpec,
    ReductionComm,
    ShiftComm,
    StmtPlan,
    plan_statement,
)
from .spmd import (
    CompiledPhase,
    SPMDBuilder,
    array_layout_signature,
    compile_phase,
    compile_program,
)

__all__ = [
    "ShiftComm", "BroadcastComm", "GatherComm", "ReductionComm",
    "CommEvent", "PipelineSpec", "StmtPlan", "plan_statement",
    "CompiledPhase", "SPMDBuilder", "compile_phase", "compile_program",
    "array_layout_signature",
]
