"""Service-side telemetry: the event log and the tail-based trace
sampler, wired into one object the :class:`LayoutService` owns.

Two pieces:

- :class:`TailSampler` — decides *after* a request completes whether
  its span tree is worth keeping.  Slow, degraded, and errored requests
  are always kept (those are the traces an operator opens), plus a
  deterministic 1-in-K sample of healthy traffic (``int(trace_id, 16)
  % K == 0`` — reproducible across runs and across processes sharing
  the trace ID, with no RNG state).  The crucial property is that the
  decision happens **before** serialization: ``Tracer.to_dict()`` is
  the expensive part of always-on tracing, and dropped traces never
  pay it.
- :class:`ServiceTelemetry` — owns the :class:`~repro.obs.telemetry.
  EventLog` and the sampler, installs itself as the process-wide
  :func:`repro.obs.telemetry.emit` sink for its lifetime (so breaker
  transitions, degradations, cache quarantines, deadline expiries and
  injected faults emitted deep inside ``resilience/`` land in the same
  log as the service's own request events), and records one
  ``service.request`` event per completed operation.

With no ``events_dir`` the log is memory-only (bounded ring) — the
default for embedded/test use; a served process passes
``--telemetry-dir`` to make it durable.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from ..obs import telemetry as obs_telemetry
from ..obs import tracing
from ..obs.telemetry import EventLog

#: a healthy request slower than this is "slow" and keeps its trace
DEFAULT_SLOW_S = 0.25

#: deterministic sample rate of healthy fast traces (1 in K)
DEFAULT_SAMPLE_EVERY = 20

#: in-memory ring of kept serialized traces
DEFAULT_KEPT_TRACES = 32


class TailSampler:
    """Post-hoc trace retention policy (thread-safe)."""

    def __init__(
        self,
        slow_s: float = DEFAULT_SLOW_S,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        kept_traces: int = DEFAULT_KEPT_TRACES,
    ):
        if slow_s <= 0:
            raise ValueError(f"slow_s must be > 0, got {slow_s}")
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.slow_s = float(slow_s)
        self.sample_every = int(sample_every)
        self._lock = threading.Lock()
        self._kept: Deque[Dict[str, Any]] = deque(maxlen=kept_traces)
        self._kept_total = 0
        self._dropped_total = 0
        self._kept_by_reason: Dict[str, int] = {}

    def decide(
        self, trace_id: str, seconds: float,
        ok: bool = True, degraded: bool = False,
    ) -> Optional[str]:
        """The retention reason for this request, or ``None`` to drop.
        Pure — no counters move; :meth:`offer` is the recording path."""
        if not ok:
            return "error"
        if degraded:
            return "degraded"
        if seconds >= self.slow_s:
            return "slow"
        try:
            sampled = int(trace_id, 16) % self.sample_every == 0
        except (TypeError, ValueError):
            sampled = False
        return "sampled" if sampled else None

    def offer(
        self, tracer: tracing.Tracer, seconds: float,
        ok: bool = True, degraded: bool = False,
    ) -> Tuple[Optional[str], Optional[Dict[str, Any]]]:
        """Decide on one finished tracer; serialize it only when kept.
        Returns ``(reason, trace_dict)`` — both ``None`` on drop."""
        reason = self.decide(
            tracer.trace_id, seconds, ok=ok, degraded=degraded
        )
        if reason is None:
            with self._lock:
                self._dropped_total += 1
            return None, None
        trace = tracer.to_dict()
        with self._lock:
            self._kept.append(trace)
            self._kept_total += 1
            self._kept_by_reason[reason] = (
                self._kept_by_reason.get(reason, 0) + 1
            )
        return reason, trace

    def kept(self) -> List[Dict[str, Any]]:
        """The most recent kept traces (newest last)."""
        with self._lock:
            return list(self._kept)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "slow_threshold_s": self.slow_s,
                "sample_every": self.sample_every,
                "kept_total": self._kept_total,
                "dropped_total": self._dropped_total,
                "kept_by_reason": dict(self._kept_by_reason),
            }


class ServiceTelemetry:
    """The service's always-on telemetry plane: event log + sampler."""

    def __init__(
        self,
        events_dir: Optional[str] = None,
        sampler: Optional[TailSampler] = None,
        max_bytes: int = obs_telemetry.DEFAULT_MAX_BYTES,
        max_files: int = obs_telemetry.DEFAULT_MAX_FILES,
        fsync: bool = True,
    ):
        self.events = EventLog(
            events_dir, max_bytes=max_bytes, max_files=max_files,
            fsync=fsync,
        )
        self.sampler = sampler if sampler is not None else TailSampler()
        self._installed = False

    # -- lifecycle -------------------------------------------------------

    def install(self) -> "ServiceTelemetry":
        """Start receiving :func:`repro.obs.telemetry.emit` events."""
        if not self._installed:
            obs_telemetry.install_sink(self._sink)
            self._installed = True
        return self

    def close(self) -> None:
        if self._installed:
            obs_telemetry.remove_sink(self._sink)
            self._installed = False
        self.events.close()

    def __enter__(self) -> "ServiceTelemetry":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _sink(self, type_: str, attrs: Mapping[str, Any]) -> None:
        self.events.record(type_, dict(attrs))

    # -- recording -------------------------------------------------------

    def record_request(
        self,
        op: str,
        seconds: float,
        ok: bool = True,
        degraded: bool = False,
        request_id: Optional[str] = None,
        error_kind: Optional[str] = None,
        tracer: Optional[tracing.Tracer] = None,
    ) -> None:
        """One completed service operation: write its event, and (for
        traced ops) run the tail-sampling decision."""
        attrs: Dict[str, Any] = {
            "op": op,
            "seconds": seconds,
            "ok": ok,
            "degraded": degraded,
        }
        if request_id:
            attrs["request_id"] = request_id
        if error_kind:
            attrs["error_kind"] = error_kind
        if tracer is not None:
            # The tracer is already deactivated by the time the request
            # is recorded, so the join key is stamped explicitly.
            attrs["trace_id"] = tracer.trace_id
        self.events.record("service.request", attrs)
        if tracer is None:
            return
        reason, trace = self.sampler.offer(
            tracer, seconds, ok=ok, degraded=degraded
        )
        if reason is not None:
            self.events.record("trace.kept", {
                "trace_id": tracer.trace_id,
                "reason": reason,
                "seconds": seconds,
                "spans": len(trace.get("spans", [])),
                "trace": trace,
            })

    def describe(self) -> Dict[str, Any]:
        return {
            "events": self.events.describe(),
            "sampler": self.sampler.describe(),
        }
