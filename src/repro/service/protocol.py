"""Request/response schemas of the layout service.

The wire format is JSON, one object per line (newline-delimited JSON
over TCP).  Every request carries an ``op``:

- ``analyze``  — run the framework, return selected layouts (pass
  ``"trace": true`` to also receive the request's span trace);
- ``stats``    — observability snapshot (counters, cache, histograms,
  sliding windows, telemetry);
- ``metrics``  — the same registry as Prometheus text exposition;
- ``slo``      — evaluate SLO objectives against the live sliding
  windows (the server's configured set, or ``"objectives": [...]``
  from the request);
- ``events``   — tail of the structured event log (``limit``,
  optional ``type`` filter);
- ``ping``     — liveness probe;
- ``shutdown`` — stop the server.

``LayoutRequest.from_dict`` is the single validation choke point: every
field is checked there so the server core only ever sees well-formed
requests, and the CLI client gets the same errors locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..distribution.layouts import DataLayout
from ..machine.params import MACHINES
from ..programs.registry import PROGRAMS
from ..tool.assistant import AssistantConfig, AssistantResult
from .errors import RequestValidationError

#: ops a server understands
OPS = ("analyze", "stats", "metrics", "slo", "events", "ping",
       "shutdown")

#: fields accepted in an analyze request
_ANALYZE_FIELDS = {
    "op", "request_id", "program", "source", "size", "dtype", "maxiter",
    "procs", "machine", "backend", "use_cache", "trace", "deadline_s",
}


@dataclass
class LayoutRequest:
    """An ``analyze`` request: which program, at what size, for which
    machine/processor count."""

    procs: int
    program: Optional[str] = None
    source: Optional[str] = None
    size: Optional[int] = None
    dtype: Optional[str] = None
    maxiter: int = 3
    machine: Any = "ipsc860"  # registry name or MachineParams dict
    backend: str = "scipy"
    use_cache: bool = True
    trace: bool = False  # return the request's span trace?
    request_id: Optional[str] = None
    #: per-request time budget in seconds; past it the ILPs go anytime
    #: and the response is labeled ``degraded`` instead of blocking
    deadline_s: Optional[float] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutRequest":
        unknown = set(data) - _ANALYZE_FIELDS
        if unknown:
            raise RequestValidationError(
                f"unknown request fields: {sorted(unknown)}"
            )
        program = data.get("program")
        source = data.get("source")
        if bool(program) == bool(source):
            raise RequestValidationError(
                "exactly one of 'program' or 'source' is required"
            )
        if program is not None and program not in PROGRAMS:
            raise RequestValidationError(
                f"unknown program {program!r}; "
                f"known: {sorted(PROGRAMS)}"
            )
        try:
            procs = int(data["procs"])
        except (KeyError, TypeError, ValueError):
            raise RequestValidationError("'procs' (int >= 1) is required")
        if procs < 1:
            raise RequestValidationError(f"procs must be >= 1, got {procs}")
        machine = data.get("machine", "ipsc860")
        if isinstance(machine, str) and machine not in MACHINES:
            raise RequestValidationError(
                f"unknown machine {machine!r}; known: {sorted(MACHINES)}"
            )
        backend = data.get("backend", "scipy")
        if backend not in ("scipy", "branch-bound"):
            raise RequestValidationError(
                f"unknown backend {backend!r}"
            )
        dtype = data.get("dtype")
        if dtype is not None and dtype not in ("real", "double"):
            raise RequestValidationError(f"unknown dtype {dtype!r}")
        deadline_s = data.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise RequestValidationError(
                    f"deadline_s must be a number, got {deadline_s!r}"
                )
            if deadline_s <= 0:
                raise RequestValidationError(
                    f"deadline_s must be > 0, got {deadline_s}"
                )
        size = data.get("size")
        return cls(
            procs=procs,
            program=program,
            source=source,
            size=int(size) if size is not None else None,
            dtype=dtype,
            maxiter=int(data.get("maxiter", 3)),
            machine=machine,
            backend=backend,
            use_cache=bool(data.get("use_cache", True)),
            trace=bool(data.get("trace", False)),
            request_id=data.get("request_id"),
            deadline_s=deadline_s,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": "analyze", "procs": self.procs}
        for name in ("program", "source", "size", "dtype", "request_id",
                     "deadline_s"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        out["maxiter"] = self.maxiter
        out["machine"] = self.machine
        out["backend"] = self.backend
        out["use_cache"] = self.use_cache
        out["trace"] = self.trace
        return out

    # -- resolution ------------------------------------------------------

    def resolve_source(self) -> str:
        """The Fortran source text this request is about."""
        if self.source is not None:
            return self.source
        spec = PROGRAMS[self.program]
        kwargs: Dict[str, Any] = {
            "n": self.size or spec.default_size,
            "dtype": self.dtype or spec.default_dtype,
        }
        if spec.has_time_loop:
            kwargs["maxiter"] = self.maxiter
        return spec.source_fn(**kwargs)

    def resolve_config(self) -> AssistantConfig:
        machine = self.machine
        if isinstance(machine, str):
            machine = MACHINES[machine]
        return AssistantConfig.from_dict({
            "nprocs": self.procs,
            "machine": machine,
            "ilp_backend": self.backend,
        })


@dataclass
class StageTiming:
    """Wall time + cache outcome of one pipeline stage."""

    stage: str
    seconds: float
    cache_hit: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
        }


def serialize_layout(layout: DataLayout) -> Dict[str, Any]:
    """A JSON-safe rendering of one selected layout."""
    return {
        "distribution": str(layout.distribution),
        "alignments": {name: str(align)
                       for name, align in layout.alignments},
        "hpf": layout.describe(),
    }


@dataclass
class LayoutResponse:
    """The answer to an ``analyze`` request."""

    ok: bool
    request_id: Optional[str] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    predicted_total_us: Optional[float] = None
    is_dynamic: Optional[bool] = None
    layouts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    stage_timings: List[StageTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: False when any pipeline stage fell back to an unproven incumbent
    #: or heuristic (deadline expiry); the result is still valid, just
    #: not certified optimal
    degraded: bool = False
    #: the fallback decisions behind ``degraded`` (stage/reason dicts)
    degradations: List[Dict[str, Any]] = field(default_factory=list)
    #: the request's serialized span trace, when asked for
    trace: Optional[Dict[str, Any]] = None

    @classmethod
    def from_result(
        cls,
        result: AssistantResult,
        timings: List[StageTiming],
        request_id: Optional[str] = None,
        degradations: Optional[List[Dict[str, Any]]] = None,
    ) -> "LayoutResponse":
        degradations = degradations or []
        return cls(
            ok=True,
            request_id=request_id,
            predicted_total_us=result.predicted_total_us,
            is_dynamic=result.is_dynamic,
            layouts={
                str(idx): serialize_layout(layout)
                for idx, layout in sorted(result.selected_layouts.items())
            },
            stage_timings=timings,
            cache_hits=sum(1 for t in timings if t.cache_hit),
            cache_misses=sum(1 for t in timings if not t.cache_hit),
            degraded=bool(degradations),
            degradations=degradations,
        )

    @classmethod
    def failure(cls, error: Exception,
                request_id: Optional[str] = None) -> "LayoutResponse":
        kind = getattr(error, "kind", "internal")
        return cls(ok=False, request_id=request_id,
                   error=f"{type(error).__name__}: {error}",
                   error_kind=kind)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"ok": self.ok}
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if not self.ok:
            out["error"] = self.error
            out["error_kind"] = self.error_kind
            return out
        out.update({
            "predicted_total_us": self.predicted_total_us,
            "is_dynamic": self.is_dynamic,
            "layouts": self.layouts,
            "stage_timings": [t.to_dict() for t in self.stage_timings],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded": self.degraded,
        })
        if self.degradations:
            out["degradations"] = self.degradations
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutResponse":
        timings = [
            StageTiming(stage=t["stage"], seconds=t["seconds"],
                        cache_hit=t["cache_hit"])
            for t in data.get("stage_timings", [])
        ]
        return cls(
            ok=bool(data.get("ok")),
            request_id=data.get("request_id"),
            error=data.get("error"),
            error_kind=data.get("error_kind"),
            predicted_total_us=data.get("predicted_total_us"),
            is_dynamic=data.get("is_dynamic"),
            layouts=dict(data.get("layouts", {})),
            stage_timings=timings,
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            degraded=bool(data.get("degraded", False)),
            degradations=list(data.get("degradations", [])),
            trace=data.get("trace"),
        )
