"""Request/response schemas of the layout service.

The wire format is JSON, one object per line (newline-delimited JSON
over TCP).  Every request carries an ``op``:

- ``analyze``  — run the framework, return selected layouts (pass
  ``"trace": true`` to also receive the request's span trace);
- ``stats``    — observability snapshot (counters, cache, histograms,
  sliding windows, telemetry);
- ``metrics``  — the same registry as Prometheus text exposition;
- ``slo``      — evaluate SLO objectives against the live sliding
  windows (the server's configured set, or ``"objectives": [...]``
  from the request);
- ``events``   — tail of the structured event log (``limit``,
  optional ``type`` filter);
- ``ping``     — liveness probe;
- ``health``   — liveness plus overload state: admission queue depth,
  adaptive concurrency limit, zombie workers, drain status;
- ``ready``    — readiness probe: ``ready: false`` once the service is
  draining (load balancers stop routing here) or saturated;
- ``shutdown`` — graceful drain, then stop the server (optional
  ``drain_deadline_s`` bounds the drain).

``LayoutRequest.from_dict`` is the single validation choke point: every
field is checked there so the server core only ever sees well-formed
requests, and the CLI client gets the same errors locally.

Client-side overload hygiene lives here too: :class:`RetryBudget`
(a token bucket bounding retry amplification) and :class:`RetryPolicy`
(jittered exponential backoff that honors a server-supplied
``retry_after_s`` and only retries typed ``overloaded`` rejections).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..distribution.layouts import DataLayout
from ..machine.params import MACHINES
from ..programs.registry import PROGRAMS
from ..resilience.breaker import Backoff
from ..tool.assistant import AssistantConfig, AssistantResult
from .errors import RequestValidationError

#: ops a server understands
OPS = ("analyze", "stats", "metrics", "slo", "events", "ping",
       "health", "ready", "shutdown")

#: fields accepted in an analyze request
_ANALYZE_FIELDS = {
    "op", "request_id", "program", "source", "size", "dtype", "maxiter",
    "procs", "machine", "backend", "use_cache", "trace", "deadline_s",
}


@dataclass
class LayoutRequest:
    """An ``analyze`` request: which program, at what size, for which
    machine/processor count."""

    procs: int
    program: Optional[str] = None
    source: Optional[str] = None
    size: Optional[int] = None
    dtype: Optional[str] = None
    maxiter: int = 3
    machine: Any = "ipsc860"  # registry name or MachineParams dict
    backend: str = "scipy"
    use_cache: bool = True
    trace: bool = False  # return the request's span trace?
    request_id: Optional[str] = None
    #: per-request time budget in seconds; past it the ILPs go anytime
    #: and the response is labeled ``degraded`` instead of blocking
    deadline_s: Optional[float] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutRequest":
        unknown = set(data) - _ANALYZE_FIELDS
        if unknown:
            raise RequestValidationError(
                f"unknown request fields: {sorted(unknown)}"
            )
        program = data.get("program")
        source = data.get("source")
        if bool(program) == bool(source):
            raise RequestValidationError(
                "exactly one of 'program' or 'source' is required"
            )
        if program is not None and program not in PROGRAMS:
            raise RequestValidationError(
                f"unknown program {program!r}; "
                f"known: {sorted(PROGRAMS)}"
            )
        try:
            procs = int(data["procs"])
        except (KeyError, TypeError, ValueError):
            raise RequestValidationError("'procs' (int >= 1) is required")
        if procs < 1:
            raise RequestValidationError(f"procs must be >= 1, got {procs}")
        machine = data.get("machine", "ipsc860")
        if isinstance(machine, str) and machine not in MACHINES:
            raise RequestValidationError(
                f"unknown machine {machine!r}; known: {sorted(MACHINES)}"
            )
        backend = data.get("backend", "scipy")
        if backend not in ("scipy", "branch-bound"):
            raise RequestValidationError(
                f"unknown backend {backend!r}"
            )
        dtype = data.get("dtype")
        if dtype is not None and dtype not in ("real", "double"):
            raise RequestValidationError(f"unknown dtype {dtype!r}")
        deadline_s = data.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise RequestValidationError(
                    f"deadline_s must be a number, got {deadline_s!r}"
                )
            if deadline_s <= 0:
                raise RequestValidationError(
                    f"deadline_s must be > 0, got {deadline_s}"
                )
        size = data.get("size")
        return cls(
            procs=procs,
            program=program,
            source=source,
            size=int(size) if size is not None else None,
            dtype=dtype,
            maxiter=int(data.get("maxiter", 3)),
            machine=machine,
            backend=backend,
            use_cache=bool(data.get("use_cache", True)),
            trace=bool(data.get("trace", False)),
            request_id=data.get("request_id"),
            deadline_s=deadline_s,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": "analyze", "procs": self.procs}
        for name in ("program", "source", "size", "dtype", "request_id",
                     "deadline_s"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        out["maxiter"] = self.maxiter
        out["machine"] = self.machine
        out["backend"] = self.backend
        out["use_cache"] = self.use_cache
        out["trace"] = self.trace
        return out

    # -- resolution ------------------------------------------------------

    def resolve_source(self) -> str:
        """The Fortran source text this request is about."""
        if self.source is not None:
            return self.source
        spec = PROGRAMS[self.program]
        kwargs: Dict[str, Any] = {
            "n": self.size or spec.default_size,
            "dtype": self.dtype or spec.default_dtype,
        }
        if spec.has_time_loop:
            kwargs["maxiter"] = self.maxiter
        return spec.source_fn(**kwargs)

    def resolve_config(self) -> AssistantConfig:
        machine = self.machine
        if isinstance(machine, str):
            machine = MACHINES[machine]
        return AssistantConfig.from_dict({
            "nprocs": self.procs,
            "machine": machine,
            "ilp_backend": self.backend,
        })


@dataclass
class StageTiming:
    """Wall time + cache outcome of one pipeline stage."""

    stage: str
    seconds: float
    cache_hit: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
        }


def serialize_layout(layout: DataLayout) -> Dict[str, Any]:
    """A JSON-safe rendering of one selected layout."""
    return {
        "distribution": str(layout.distribution),
        "alignments": {name: str(align)
                       for name, align in layout.alignments},
        "hpf": layout.describe(),
    }


@dataclass
class LayoutResponse:
    """The answer to an ``analyze`` request."""

    ok: bool
    request_id: Optional[str] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    predicted_total_us: Optional[float] = None
    is_dynamic: Optional[bool] = None
    layouts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    stage_timings: List[StageTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: False when any pipeline stage fell back to an unproven incumbent
    #: or heuristic (deadline expiry); the result is still valid, just
    #: not certified optimal
    degraded: bool = False
    #: the fallback decisions behind ``degraded`` (stage/reason dicts)
    degradations: List[Dict[str, Any]] = field(default_factory=list)
    #: the request's serialized span trace, when asked for
    trace: Optional[Dict[str, Any]] = None
    #: on a typed ``overloaded`` rejection: the server's prediction of
    #: when capacity frees up; clients floor their backoff at this
    retry_after_s: Optional[float] = None

    @classmethod
    def from_result(
        cls,
        result: AssistantResult,
        timings: List[StageTiming],
        request_id: Optional[str] = None,
        degradations: Optional[List[Dict[str, Any]]] = None,
    ) -> "LayoutResponse":
        degradations = degradations or []
        return cls(
            ok=True,
            request_id=request_id,
            predicted_total_us=result.predicted_total_us,
            is_dynamic=result.is_dynamic,
            layouts={
                str(idx): serialize_layout(layout)
                for idx, layout in sorted(result.selected_layouts.items())
            },
            stage_timings=timings,
            cache_hits=sum(1 for t in timings if t.cache_hit),
            cache_misses=sum(1 for t in timings if not t.cache_hit),
            degraded=bool(degradations),
            degradations=degradations,
        )

    @classmethod
    def failure(cls, error: Exception,
                request_id: Optional[str] = None) -> "LayoutResponse":
        kind = getattr(error, "kind", "internal")
        return cls(ok=False, request_id=request_id,
                   error=f"{type(error).__name__}: {error}",
                   error_kind=kind,
                   retry_after_s=getattr(error, "retry_after_s", None))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"ok": self.ok}
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if not self.ok:
            out["error"] = self.error
            out["error_kind"] = self.error_kind
            if self.retry_after_s is not None:
                out["retry_after_s"] = self.retry_after_s
            return out
        out.update({
            "predicted_total_us": self.predicted_total_us,
            "is_dynamic": self.is_dynamic,
            "layouts": self.layouts,
            "stage_timings": [t.to_dict() for t in self.stage_timings],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded": self.degraded,
        })
        if self.degradations:
            out["degradations"] = self.degradations
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutResponse":
        timings = [
            StageTiming(stage=t["stage"], seconds=t["seconds"],
                        cache_hit=t["cache_hit"])
            for t in data.get("stage_timings", [])
        ]
        return cls(
            ok=bool(data.get("ok")),
            request_id=data.get("request_id"),
            error=data.get("error"),
            error_kind=data.get("error_kind"),
            predicted_total_us=data.get("predicted_total_us"),
            is_dynamic=data.get("is_dynamic"),
            layouts=dict(data.get("layouts", {})),
            stage_timings=timings,
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            degraded=bool(data.get("degraded", False)),
            degradations=list(data.get("degradations", [])),
            trace=data.get("trace"),
            retry_after_s=data.get("retry_after_s"),
        )


# -- client-side overload hygiene -----------------------------------------

#: error kinds a client may safely retry: the request never started, so
#: retrying cannot duplicate work or mask a real failure
RETRYABLE_KINDS = frozenset({"overloaded"})


class RetryBudget:
    """Token bucket bounding retry amplification.

    Every first-attempt request deposits ``ratio`` tokens; every retry
    spends one.  Sustained overload therefore sees at most ``ratio``
    retries per request fleet-wide — retries cannot multiply the load
    that caused the shedding (the classic retry-storm failure mode).
    """

    def __init__(self, ratio: float = 0.1, min_tokens: float = 3.0,
                 max_tokens: float = 30.0):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        if min_tokens < 0 or max_tokens < min_tokens:
            raise ValueError(
                "need 0 <= min_tokens <= max_tokens, got "
                f"{min_tokens}/{max_tokens}"
            )
        self.ratio = float(ratio)
        self.max_tokens = float(max_tokens)
        self._lock = threading.Lock()
        self._tokens = float(min_tokens)
        self.spent_total = 0
        self.denied_total = 0

    def note_request(self) -> None:
        """A first attempt went out: deposit its retry allowance."""
        with self._lock:
            self._tokens = min(self._tokens + self.ratio, self.max_tokens)

    def try_spend(self) -> bool:
        """Take one retry token; ``False`` means the budget is spent
        and the caller must surface the error instead of retrying."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent_total += 1
                return True
            self.denied_total += 1
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "tokens": round(self._tokens, 3),
                "ratio": self.ratio,
                "spent_total": self.spent_total,
                "denied_total": self.denied_total,
            }


class RetryPolicy:
    """When and how long to back off before retrying a shed request.

    Delays come from the resilience layer's jittered exponential
    :class:`~repro.resilience.breaker.Backoff`, floored at the server's
    ``retry_after_s`` hint — a polite client never comes back sooner
    than the server predicted capacity."""

    def __init__(
        self,
        max_attempts: int = 3,
        backoff: Optional[Backoff] = None,
        budget: Optional[RetryBudget] = None,
        retryable_kinds: frozenset = RETRYABLE_KINDS,
    ):
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = int(max_attempts)
        self.backoff = backoff or Backoff(
            base_s=0.1, factor=2.0, max_s=5.0, jitter=0.5
        )
        self.budget = budget or RetryBudget()
        self.retryable_kinds = frozenset(retryable_kinds)

    def should_retry(self, attempt: int, error_kind: Optional[str]) -> bool:
        """May attempt ``attempt`` (0-based) be followed by another?
        Checks kind, attempt count, and spends a budget token."""
        if error_kind not in self.retryable_kinds:
            return False
        if attempt + 1 >= self.max_attempts:
            return False
        return self.budget.try_spend()

    def delay_s(self, attempt: int,
                retry_after_s: Optional[float] = None) -> float:
        """Backoff before retry number ``attempt + 1``; the server's
        hint is a hard floor that jitter cannot undercut."""
        delay = self.backoff.delay(attempt)
        if retry_after_s is not None:
            delay = max(delay, float(retry_after_s))
        return delay
