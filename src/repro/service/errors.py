"""Error taxonomy of the layout service.

Every error the service can surface to a client derives from
:class:`ServiceError`; the wire protocol reports ``error.kind`` so
clients can distinguish bad requests from capacity problems without
parsing message text.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for all service-level failures."""

    kind = "internal"


class RequestValidationError(ServiceError):
    """The request payload is malformed or references unknown entities."""

    kind = "bad-request"


class RequestTimeoutError(ServiceError):
    """The whole request exceeded its deadline."""

    kind = "timeout"


class JobTimeoutError(ServiceError):
    """A single worker job exceeded its per-job deadline."""

    kind = "timeout"


class ConnectionIdleError(ServiceError):
    """A connection sat idle (or wrote too slowly) past the socket
    timeout; the server replies with this and closes, so a slowloris
    client cannot pin a handler thread forever."""

    kind = "timeout"


class WorkerPoolError(ServiceError):
    """A job kept failing for pool-level (transient) reasons even after
    bounded retries and a serial fallback attempt."""

    kind = "worker-pool"
