"""The layout-analysis server.

Two layers:

- :class:`LayoutService` — the in-process engine.  It runs the six
  assistant stages with per-stage caching, per-stage wall-time metrics,
  pooled estimation, and a per-request deadline.  Tests and embedders
  use it directly;
- :class:`LayoutServer` — a threaded TCP front end speaking the
  newline-delimited JSON protocol of :mod:`repro.service.protocol`.
  Independent requests fan out across connection threads while sharing
  one stage cache, one metrics registry, and one worker pool.

Overload protection sits between the two: every ``analyze`` passes the
:class:`~repro.resilience.admission.AdmissionController` before any
work starts.  Requests the controller cannot serve in time are shed
with a typed ``overloaded`` error (plus ``retry_after_s``) instead of
queueing into latency collapse; requests admitted under brownout get a
clamped solver budget so the existing anytime/greedy fallbacks return
fast labeled-degraded answers; a draining service refuses new work
with a typed ``shutting-down`` rejection while in-flight requests
finish under the drain deadline.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from concurrent.futures import (
    Future,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import tracing
from ..obs.log import get_logger
from ..obs.prometheus import render_prometheus
from ..obs.slo import Objective, SLOValidationError, evaluate_objectives
from ..obs.telemetry import emit as emit_event
from ..resilience.admission import AdmissionController
from ..resilience.deadline import Deadline, deadline_scope
from ..resilience.degrade import collecting, noted_count
from ..resilience.errors import (
    InjectedFault,
    OverloadedError,
    ShuttingDownError,
)
from ..resilience.faults import fault_point
from ..tool.assistant import (
    AssistantResult,
    stage_alignment,
    stage_distribution,
    stage_estimation,
    stage_frontend,
    stage_partition,
    stage_selection,
)
from .cache import StageCache, StageKeys
from .errors import ConnectionIdleError, RequestTimeoutError, ServiceError
from .metrics import Metrics
from .pool import WorkerPool
from .protocol import (
    OPS,
    LayoutRequest,
    LayoutResponse,
    RetryPolicy,
    StageTiming,
)
from .telemetry import ServiceTelemetry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7861

#: hard cap on one request line; beyond it the connection is refused
#: with a typed error instead of buffering unboundedly
MAX_REQUEST_BYTES = 1 << 20

#: fraction of the hard request timeout handed to the solvers as a soft
#: deadline, leaving headroom to assemble a degraded-but-valid response
SOFT_DEADLINE_FRACTION = 0.8

#: solver budget (seconds) for requests admitted under brownout: short
#: enough that the anytime ILPs fall back to the labeled greedy paths,
#: long enough to produce a valid layout
DEFAULT_BROWNOUT_BUDGET_S = 0.25

#: floor on the post-queue-wait solver budget, so a request admitted
#: at the edge of its deadline still assembles a degraded response
MIN_EFFECTIVE_BUDGET_S = 0.05

#: default bound on one graceful drain
DEFAULT_DRAIN_DEADLINE_S = 10.0

#: per-connection socket timeout: an idle or slow-writing client gets
#: a typed timeout reply and its connection closed (slowloris guard)
DEFAULT_CONN_TIMEOUT_S = 300.0

logger = get_logger("repro.service")


class LayoutService:
    """The long-lived analysis engine behind the protocol."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
        metrics: Optional[Metrics] = None,
        request_timeout: Optional[float] = None,
        use_cache: bool = True,
        telemetry: Optional[ServiceTelemetry] = None,
        objectives: Optional[List[Objective]] = None,
        admission: Optional[AdmissionController] = None,
        brownout_budget_s: float = DEFAULT_BROWNOUT_BUDGET_S,
    ):
        self.cache = StageCache(cache_dir)
        self.pool = pool if pool is not None else WorkerPool()
        self.metrics = metrics or Metrics()
        self.request_timeout = request_timeout
        self.use_cache = use_cache
        # Admission control defaults on, wired to the dependency
        # breakers: a tripped pool or cache breaker flips admitted
        # requests into brownout before shedding starts.
        self.admission = (
            admission if admission is not None
            else AdmissionController(
                breakers=[self.pool.breaker, self.cache.breaker]
            )
        )
        self.brownout_budget_s = float(brownout_budget_s)
        # The telemetry plane is always on: with no events_dir the log
        # is a bounded in-memory ring, so embedded use costs nothing on
        # disk.  Installing makes this service the process-wide sink
        # for resilience events (breaker trips, degradations, ...).
        self.telemetry = (
            telemetry if telemetry is not None else ServiceTelemetry()
        )
        self.telemetry.install()
        self.objectives = list(objectives or [])

    def close(self) -> None:
        self.pool.shutdown()
        self.telemetry.close()

    def __enter__(self) -> "LayoutService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the staged pipeline ---------------------------------------------

    def _run_pipeline(
        self, request: LayoutRequest
    ) -> Tuple[AssistantResult, List[StageTiming]]:
        source = request.resolve_source()
        config = request.resolve_config()
        keys = StageKeys(source, config)
        use_cache = self.use_cache and request.use_cache
        timings: List[StageTiming] = []

        def run_stage(name: str, key: str, compute):
            with tracing.span("service.stage", stage=name) as stage_span:
                start = perf_counter()
                hit, value = (self.cache.load(name, key) if use_cache
                              else (False, None))
                if not hit:
                    before = noted_count()
                    value = compute()
                    # Never cache a degraded stage output: a later
                    # request with a full budget must recompute it, not
                    # inherit this request's heuristic fallback.
                    if use_cache and noted_count() == before:
                        self.cache.store(name, key, value)
                seconds = perf_counter() - start
                stage_span.set_attr("cache_hit", hit)
            timings.append(
                StageTiming(stage=name, seconds=seconds, cache_hit=hit)
            )
            self.metrics.observe_stage(name, seconds)
            self.metrics.record_cache(name, hit)
            return value

        program, symbols = run_stage(
            "frontend", keys.frontend, lambda: stage_frontend(source)
        )
        keys.bind_program(program)
        partition, pcfg, template = run_stage(
            "partition", keys.partition,
            lambda: stage_partition(program, symbols, config),
        )
        alignment_spaces = run_stage(
            "alignment", keys.alignment,
            lambda: stage_alignment(
                partition, pcfg, symbols, template, config
            ),
        )
        layout_spaces = run_stage(
            "distribution", keys.distribution,
            lambda: stage_distribution(
                partition, alignment_spaces, template, symbols, config
            ),
        )
        estimates, db = run_stage(
            "estimation", keys.estimation,
            lambda: stage_estimation(
                partition, layout_spaces, symbols, config,
                job_runner=self.pool.run_jobs,
            ),
        )
        graph, selection = run_stage(
            "selection", keys.selection,
            lambda: stage_selection(
                partition, pcfg, estimates, symbols, db, config
            ),
        )
        result = AssistantResult(
            config=config,
            program=program,
            symbols=symbols,
            partition=partition,
            pcfg=pcfg,
            template=template,
            alignment_spaces=alignment_spaces,
            layout_spaces=layout_spaces,
            estimates=estimates,
            graph=graph,
            selection=selection,
            db=db,
        )
        return result, timings

    # -- request handling ------------------------------------------------

    def _request_budget(
        self, request: LayoutRequest
    ) -> Optional[float]:
        """The solver time budget for one request: the explicit
        ``deadline_s`` if given, else a soft fraction of the hard
        request timeout (leaving headroom to build the degraded
        response before the hard cutoff kills the thread)."""
        if request.deadline_s is not None:
            return request.deadline_s
        if self.request_timeout is not None:
            return self.request_timeout * SOFT_DEADLINE_FRACTION
        return None

    def _note_zombie(self, future: "Future") -> None:
        """A timed-out pipeline thread cannot be cancelled once running
        (the per-request executor's future is already executing): count
        it as a zombie so the limiter's usable concurrency shrinks, and
        reclaim the slot whenever the abandoned work finally finishes."""
        zombies = self.admission.note_zombie()
        self.metrics.inc("zombie_workers_total")
        self.metrics.set_gauge("zombie_workers", zombies)

        def _reclaim(_future: "Future") -> None:
            remaining = self.admission.zombie_done()
            self.metrics.set_gauge("zombie_workers", remaining)

        # if the future never started (cancelled in shutdown), or
        # already finished, the callback fires immediately — no zombie
        future.add_done_callback(_reclaim)

    def analyze(self, request: LayoutRequest) -> LayoutResponse:
        """Serve one analyze request (deadline-bounded, never raises).

        Every request runs under its own tracer: span durations feed the
        ``span_seconds`` aggregates in the metrics registry, and the
        full trace is attached to the response when the request asked
        for it.  The tracer — like the deadline and the degradation
        collector — is activated *inside* the pipeline thread
        (ContextVars do not cross threads on their own)."""
        self.metrics.inc("requests_total")
        start = perf_counter()
        # Detail events (per-candidate estimates, CAG edges) only when
        # the client explicitly asked for the trace; the always-on
        # production tracer records structure and summary attrs so its
        # overhead stays inside the tail-sampling budget.
        tracer = tracing.Tracer(name="request", detail=request.trace)
        budget_s = self._request_budget(request)

        # Admission first: a request the controller predicts cannot be
        # served within its own budget is shed before any work starts.
        try:
            ticket = self.admission.try_acquire(budget_s)
        except (OverloadedError, ShuttingDownError) as exc:
            self.metrics.inc("requests_failed")
            self.metrics.inc("requests_shed")
            logger.warning(
                "request %s shed: %s",
                request.request_id or "<anonymous>", exc,
            )
            self._record_analyze(
                request, tracer, perf_counter() - start,
                ok=False, error_kind=exc.kind,
            )
            return LayoutResponse.failure(
                exc, request_id=request.request_id
            )

        # Whatever the request queued for came out of its own budget;
        # under brownout the budget is clamped so the anytime solvers
        # take their labeled greedy fallbacks instead of queue-building.
        effective_budget = budget_s
        if effective_budget is not None:
            # the floor only guards against queue wait eating the whole
            # budget; it must never *raise* an explicitly tiny deadline
            effective_budget = max(
                effective_budget - ticket.waited_s,
                min(effective_budget, MIN_EFFECTIVE_BUDGET_S),
            )
        if ticket.brownout:
            self.metrics.inc("requests_brownout")
            effective_budget = (
                self.brownout_budget_s if effective_budget is None
                else min(effective_budget, self.brownout_budget_s)
            )
        deadline = (
            Deadline(effective_budget)
            if effective_budget is not None else None
        )

        def pipeline() -> Tuple[
            AssistantResult, List[StageTiming], List[Dict[str, Any]]
        ]:
            with tracing.activate(tracer):
                with deadline_scope(deadline), collecting() as events:
                    with tracing.span(
                        "request",
                        request_id=request.request_id or "",
                        program=request.program or "<source>",
                    ):
                        result, timings = self._run_pipeline(request)
                    return result, timings, [e.to_dict() for e in events]

        served_ok = False
        timed_out = False
        try:
            try:
                try:
                    if self.request_timeout is not None:
                        executor = ThreadPoolExecutor(max_workers=1)
                        try:
                            future = executor.submit(pipeline)
                            result, timings, degradations = future.result(
                                timeout=self.request_timeout
                            )
                        finally:
                            executor.shutdown(
                                wait=False, cancel_futures=True
                            )
                    else:
                        result, timings, degradations = pipeline()
                except FuturesTimeoutError:
                    timed_out = True
                    self._note_zombie(future)
                    self.metrics.inc("requests_failed")
                    self.metrics.inc("requests_timeout")
                    logger.warning(
                        "request %s timed out after %ss",
                        request.request_id or "<anonymous>",
                        self.request_timeout,
                    )
                    self._record_analyze(
                        request, tracer, perf_counter() - start,
                        ok=False, error_kind="timeout",
                    )
                    return LayoutResponse.failure(
                        RequestTimeoutError(
                            f"request exceeded {self.request_timeout}s"
                        ),
                        request_id=request.request_id,
                    )
                except Exception as exc:
                    self.metrics.inc("requests_failed")
                    logger.warning(
                        "request %s failed: %s",
                        request.request_id or "<anonymous>", exc,
                    )
                    self._record_analyze(
                        request, tracer, perf_counter() - start,
                        ok=False,
                        error_kind=getattr(exc, "kind", "internal"),
                    )
                    return LayoutResponse.failure(
                        exc, request_id=request.request_id
                    )
            finally:
                self._fold_trace(tracer)
            served_ok = True
        finally:
            # service time (excluding queue wait) feeds the limiter's
            # AIMD loop and the controller's wait predictions
            self.admission.release(
                ticket,
                max(perf_counter() - start - ticket.waited_s, 0.0),
                ok=served_ok,
                timed_out=timed_out,
            )
        self.metrics.inc("requests_ok")
        if degradations:
            self.metrics.inc("requests_degraded")
            logger.warning(
                "request %s degraded: %s",
                request.request_id or "<anonymous>",
                "; ".join(
                    f"{d['stage']}:{d['reason']}" for d in degradations
                ),
            )
        seconds = perf_counter() - start
        self.metrics.observe_stage("request", seconds)
        self._record_analyze(
            request, tracer, seconds,
            ok=True, degraded=bool(degradations),
        )
        response = LayoutResponse.from_result(
            result, timings, request_id=request.request_id,
            degradations=degradations,
        )
        if request.trace:
            response.trace = tracer.to_dict()
        return response

    def _record_analyze(
        self,
        request: LayoutRequest,
        tracer: tracing.Tracer,
        seconds: float,
        ok: bool,
        degraded: bool = False,
        error_kind: Optional[str] = None,
    ) -> None:
        """Feed one finished analyze into the sliding window, the event
        log, and the tail sampler (which serializes the trace only when
        it decides to keep it)."""
        self.metrics.observe_op(
            "analyze", seconds, ok=ok, degraded=degraded
        )
        self.telemetry.record_request(
            "analyze", seconds, ok=ok, degraded=degraded,
            request_id=request.request_id, error_kind=error_kind,
            tracer=tracer,
        )

    def _fold_trace(self, tracer: tracing.Tracer) -> None:
        """Fold a request trace's span durations into the registry so
        the Prometheus exposition carries pipeline span aggregates."""
        for name, durations in tracer.durations_by_name().items():
            for seconds in durations:
                self.metrics.observe_span(name, seconds)

    def analyze_dict(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            request = LayoutRequest.from_dict(payload)
        except ServiceError as exc:
            self.metrics.inc("requests_total")
            self.metrics.inc("requests_failed")
            return LayoutResponse.failure(
                exc, request_id=payload.get("request_id")
            ).to_dict()
        return self.analyze(request).to_dict()

    def stats(self) -> Dict[str, Any]:
        pool = self.pool.describe()
        cache_state = self.cache.describe()
        # Mirror pool health into gauges so silent process -> thread ->
        # serial fallbacks surface in every exposition of the registry.
        self.metrics.set_gauge("pool_degradations", pool["degradations"])
        self.metrics.set_gauge(
            "pool_active_serial", 1 if pool["active_kind"] == "serial" else 0
        )
        # Breaker state as gauges: 0 closed, 1 open, 0.5 half-open.
        state_value = {"closed": 0.0, "open": 1.0, "half-open": 0.5}
        for label, breaker in (("pool", pool["breaker"]),
                               ("cache", cache_state["breaker"])):
            self.metrics.set_gauge(
                f"breaker_{label}_open",
                state_value.get(breaker["state"], 0.0),
            )
            self.metrics.set_gauge(
                f"breaker_{label}_opens_total", breaker["opens_total"]
            )
            self.metrics.set_gauge(
                f"breaker_{label}_rejections_total",
                breaker["rejections_total"],
            )
        self.metrics.set_gauge(
            "cache_quarantined_total", cache_state["quarantined_total"]
        )
        admission = self.admission.describe()
        limiter = admission["limiter"]
        self.metrics.set_gauge("admission_in_flight",
                               admission["in_flight"])
        self.metrics.set_gauge("admission_queue_depth",
                               admission["queue_depth"])
        self.metrics.set_gauge("admission_shed_total",
                               admission["shed_total"])
        self.metrics.set_gauge("admission_limit", limiter["limit"])
        self.metrics.set_gauge("admission_usable", limiter["usable"])
        self.metrics.set_gauge("zombie_workers", limiter["zombies"])
        self.metrics.set_gauge(
            "admission_draining", 1 if admission["draining"] else 0
        )
        self.metrics.set_gauge(
            "admission_brownout", 1 if admission["brownout"] else 0
        )
        snapshot = self.metrics.snapshot()
        snapshot["admission"] = admission
        snapshot["telemetry"] = self.telemetry.describe()
        snapshot["pool"] = pool
        snapshot["cache"]["disk_entries"] = self.cache.entry_count()
        snapshot["cache"]["dir"] = self.cache.root
        snapshot["cache"]["breaker"] = cache_state["breaker"]
        snapshot["cache"]["quarantined_total"] = (
            cache_state["quarantined_total"]
        )
        return snapshot

    def prometheus(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return render_prometheus(self.stats())

    def slo_report(
        self, objectives: Optional[List[Objective]] = None,
        require_data: bool = False,
    ) -> Dict[str, Any]:
        """Evaluate objectives (given or configured) against the live
        sliding windows; returns the serialized report."""
        report = evaluate_objectives(
            objectives if objectives is not None else self.objectives,
            self.metrics.window_snapshot(),
            require_data=require_data,
        )
        return report.to_dict()

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded protocol message."""
        op = payload.get("op", "analyze")
        logger.debug("handling op %r", op)
        try:
            fault_point("service.request")
        except InjectedFault as exc:
            self.metrics.inc("requests_failed")
            if op in OPS:
                self.metrics.observe_op(op, 0.0, ok=False)
                self.telemetry.record_request(
                    op, 0.0, ok=False, error_kind=exc.kind,
                    request_id=payload.get("request_id"),
                )
            return {"ok": False, "error": str(exc),
                    "error_kind": exc.kind,
                    "request_id": payload.get("request_id")}
        if op == "analyze":
            # analyze records its own telemetry (it has the tracer)
            return self.analyze_dict(payload)
        start = perf_counter()
        response = self._handle_light(op, payload)
        if op in OPS:
            seconds = perf_counter() - start
            ok = bool(response.get("ok"))
            self.metrics.observe_op(op, seconds, ok=ok)
            self.telemetry.record_request(
                op, seconds, ok=ok,
                request_id=payload.get("request_id"),
                error_kind=None if ok else response.get("error_kind"),
            )
        return response

    def _handle_light(
        self, op: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The non-analyze ops (cheap, no tracer of their own)."""
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats()}
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "text": self.prometheus()}
        if op == "slo":
            raw = payload.get("objectives")
            try:
                if raw is not None:
                    if not isinstance(raw, list) or not raw:
                        raise SLOValidationError(
                            "'objectives' must be a non-empty list"
                        )
                    objectives = [Objective.from_dict(o) for o in raw]
                elif self.objectives:
                    objectives = None  # use the configured set
                else:
                    raise SLOValidationError(
                        "no objectives configured on this server; "
                        "pass 'objectives' in the request"
                    )
            except SLOValidationError as exc:
                return {"ok": False, "error": str(exc),
                        "error_kind": "bad-request"}
            require_data = bool(payload.get("require_data", False))
            return {"ok": True, "op": "slo",
                    "report": self.slo_report(
                        objectives, require_data=require_data)}
        if op == "events":
            try:
                limit = int(payload.get("limit", 100))
            except (TypeError, ValueError):
                return {"ok": False,
                        "error": "'limit' must be an integer",
                        "error_kind": "bad-request"}
            events = self.telemetry.events.tail(
                limit=limit, type=payload.get("type")
            )
            return {"ok": True, "op": "events", "events": events,
                    "telemetry": self.telemetry.describe()}
        if op == "health":
            admission = self.admission.describe()
            return {
                "ok": True, "op": "health",
                "status": "draining" if admission["draining"] else "ok",
                "admission": admission,
            }
        if op == "ready":
            admission = self.admission.describe()
            ready = (
                not admission["draining"]
                and admission["queue_depth"] < self.admission.max_queue
            )
            return {
                "ok": True, "op": "ready", "ready": ready,
                "draining": admission["draining"],
                "queue_depth": admission["queue_depth"],
                "in_flight": admission["in_flight"],
                "limit": admission["limiter"]["limit"],
            }
        if op == "shutdown":
            logger.info("shutdown requested over the protocol")
            # flip into drain immediately so the reply already reflects
            # it; the TCP layer runs the bounded drain + stop afterward
            self.begin_drain()
            admission = self.admission.describe()
            return {
                "ok": True, "op": "shutdown", "draining": True,
                "in_flight": admission["in_flight"],
                "queue_depth": admission["queue_depth"],
            }
        self.metrics.inc("requests_failed")
        logger.warning("rejecting unknown op %r", op)
        return {"ok": False, "error": f"unknown op {op!r}",
                "error_kind": "bad-request"}

    # -- graceful drain ----------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting new analyze work (typed ``shutting-down``
        rejections); in-flight requests keep running."""
        self.admission.begin_drain()

    def drain(
        self, deadline_s: float = DEFAULT_DRAIN_DEADLINE_S
    ) -> Dict[str, Any]:
        """Begin (or continue) draining and wait — bounded by
        ``deadline_s`` — for in-flight work to finish.  The drain
        outcome is recorded in the telemetry event log (every event
        line is flushed/fsync'd as written, so the record is durable
        before this returns)."""
        start = perf_counter()
        self.begin_drain()
        drained = self.admission.wait_idle(deadline_s)
        admission = self.admission.describe()
        report = {
            "drained": drained,
            "waited_s": round(perf_counter() - start, 4),
            "deadline_s": deadline_s,
            "in_flight": admission["in_flight"],
            "rejected_draining":
                admission["counters"]["rejected_draining"],
        }
        if not drained:
            logger.warning(
                "drain deadline %ss expired with %d request(s) in flight",
                deadline_s, report["in_flight"],
            )
        emit_event("service.drain", phase="end", **report)
        return report


class _RequestHandler(socketserver.StreamRequestHandler):
    """One JSON object per line in, one per line out; connections may
    carry any number of requests."""

    def setup(self) -> None:
        # StreamRequestHandler applies self.timeout as the socket
        # timeout; without it an idle or byte-at-a-time client pins
        # this handler thread forever (slowloris)
        self.timeout = getattr(self.server, "conn_timeout_s", None)
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        while True:
            # Bounded read: a line longer than MAX_REQUEST_BYTES gets a
            # typed refusal and the connection closes (the remainder of
            # the oversized line cannot be resynchronized).
            try:
                raw = self.rfile.readline(MAX_REQUEST_BYTES + 1)
            except socket.timeout:
                exc = ConnectionIdleError(
                    "connection idle longer than "
                    f"{self.timeout}s; closing"
                )
                try:
                    self._reply({"ok": False, "error": str(exc),
                                 "error_kind": exc.kind})
                except (OSError, InjectedFault):
                    pass
                return
            if not raw:
                return
            if len(raw) > MAX_REQUEST_BYTES:
                self._reply({
                    "ok": False,
                    "error": (
                        f"request line exceeds {MAX_REQUEST_BYTES} bytes"
                    ),
                    "error_kind": "request-too-large",
                })
                return
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                self._reply({"ok": False,
                             "error": f"bad JSON: {exc}",
                             "error_kind": "bad-request"})
                continue
            try:
                response = self.server.service.handle(payload)
            except Exception as exc:  # defense in depth: never drop the
                # connection without a typed reply
                logger.warning("handler crashed: %s", exc)
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_kind": getattr(exc, "kind", "internal"),
                }
            try:
                self._reply(response)
            except InjectedFault as exc:
                # the reply path itself faulted: try once to tell the
                # client, then give the connection up cleanly
                try:
                    self.wfile.write(json.dumps({
                        "ok": False, "error": str(exc),
                        "error_kind": exc.kind,
                    }).encode("utf-8") + b"\n")
                    self.wfile.flush()
                except OSError:
                    pass
                return
            if payload.get("op") == "shutdown":
                try:
                    drain_deadline = float(
                        payload.get("drain_deadline_s",
                                    DEFAULT_DRAIN_DEADLINE_S)
                    )
                except (TypeError, ValueError):
                    drain_deadline = DEFAULT_DRAIN_DEADLINE_S
                threading.Thread(
                    target=self.server.graceful_shutdown,
                    args=(drain_deadline,),
                    daemon=True,
                ).start()
                return

    def _reply(self, payload: Dict[str, Any]) -> None:
        fault_point("server.reply")
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()


class LayoutServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front end; one shared :class:`LayoutService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: LayoutService,
        conn_timeout_s: Optional[float] = DEFAULT_CONN_TIMEOUT_S,
    ):
        super().__init__(address, _RequestHandler)
        self.service = service
        self.conn_timeout_s = conn_timeout_s

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Start serving on a daemon thread (tests, smoke checks)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def graceful_shutdown(
        self, drain_deadline_s: float = DEFAULT_DRAIN_DEADLINE_S
    ) -> Dict[str, Any]:
        """Drain, then stop the accept loop.

        The accept loop keeps running *during* the drain on purpose:
        new analyze requests must receive typed ``shutting-down``
        replies, not connection resets.  Only once in-flight work has
        finished (or the drain deadline expired) does the listener
        stop."""
        report = self.service.drain(drain_deadline_s)
        self.shutdown()
        return report


def send_request(
    payload: Dict[str, Any],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: float = 300.0,
) -> Dict[str, Any]:
    """Client side: one request, one decoded response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        reader = sock.makefile("rb")
        line = reader.readline()
    if not line:
        raise ServiceError("server closed the connection without a reply")
    return json.loads(line)


def send_request_with_retries(
    payload: Dict[str, Any],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: float = 300.0,
    policy: Optional[RetryPolicy] = None,
    send: Optional[Callable[..., Dict[str, Any]]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """Client side with overload hygiene: retries only typed
    ``overloaded`` rejections, under the policy's retry budget, backing
    off no sooner than the server's ``retry_after_s`` hint.  Everything
    else — including ``shutting-down`` — is returned as-is; ``send``
    and ``sleep`` are injectable for tests."""
    policy = policy or RetryPolicy()
    send_fn = send or send_request
    policy.budget.note_request()
    attempt = 0
    while True:
        response = send_fn(payload, host=host, port=port, timeout=timeout)
        if response.get("ok"):
            return response
        kind = response.get("error_kind")
        if not policy.should_retry(attempt, kind):
            return response
        sleep(policy.delay_s(attempt, response.get("retry_after_s")))
        attempt += 1
