"""The layout-analysis server.

Two layers:

- :class:`LayoutService` — the in-process engine.  It runs the six
  assistant stages with per-stage caching, per-stage wall-time metrics,
  pooled estimation, and a per-request deadline.  Tests and embedders
  use it directly;
- :class:`LayoutServer` — a threaded TCP front end speaking the
  newline-delimited JSON protocol of :mod:`repro.service.protocol`.
  Independent requests fan out across connection threads while sharing
  one stage cache, one metrics registry, and one worker pool.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from concurrent.futures import (
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..obs import tracing
from ..obs.log import get_logger
from ..obs.prometheus import render_prometheus
from ..obs.slo import Objective, SLOValidationError, evaluate_objectives
from ..resilience.deadline import Deadline, deadline_scope
from ..resilience.degrade import collecting, noted_count
from ..resilience.errors import InjectedFault
from ..resilience.faults import fault_point
from ..tool.assistant import (
    AssistantResult,
    stage_alignment,
    stage_distribution,
    stage_estimation,
    stage_frontend,
    stage_partition,
    stage_selection,
)
from .cache import StageCache, StageKeys
from .errors import RequestTimeoutError, ServiceError
from .metrics import Metrics
from .pool import WorkerPool
from .protocol import OPS, LayoutRequest, LayoutResponse, StageTiming
from .telemetry import ServiceTelemetry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7861

#: hard cap on one request line; beyond it the connection is refused
#: with a typed error instead of buffering unboundedly
MAX_REQUEST_BYTES = 1 << 20

#: fraction of the hard request timeout handed to the solvers as a soft
#: deadline, leaving headroom to assemble a degraded-but-valid response
SOFT_DEADLINE_FRACTION = 0.8

logger = get_logger("repro.service")


class LayoutService:
    """The long-lived analysis engine behind the protocol."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
        metrics: Optional[Metrics] = None,
        request_timeout: Optional[float] = None,
        use_cache: bool = True,
        telemetry: Optional[ServiceTelemetry] = None,
        objectives: Optional[List[Objective]] = None,
    ):
        self.cache = StageCache(cache_dir)
        self.pool = pool if pool is not None else WorkerPool()
        self.metrics = metrics or Metrics()
        self.request_timeout = request_timeout
        self.use_cache = use_cache
        # The telemetry plane is always on: with no events_dir the log
        # is a bounded in-memory ring, so embedded use costs nothing on
        # disk.  Installing makes this service the process-wide sink
        # for resilience events (breaker trips, degradations, ...).
        self.telemetry = (
            telemetry if telemetry is not None else ServiceTelemetry()
        )
        self.telemetry.install()
        self.objectives = list(objectives or [])

    def close(self) -> None:
        self.pool.shutdown()
        self.telemetry.close()

    def __enter__(self) -> "LayoutService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the staged pipeline ---------------------------------------------

    def _run_pipeline(
        self, request: LayoutRequest
    ) -> Tuple[AssistantResult, List[StageTiming]]:
        source = request.resolve_source()
        config = request.resolve_config()
        keys = StageKeys(source, config)
        use_cache = self.use_cache and request.use_cache
        timings: List[StageTiming] = []

        def run_stage(name: str, key: str, compute):
            with tracing.span("service.stage", stage=name) as stage_span:
                start = perf_counter()
                hit, value = (self.cache.load(name, key) if use_cache
                              else (False, None))
                if not hit:
                    before = noted_count()
                    value = compute()
                    # Never cache a degraded stage output: a later
                    # request with a full budget must recompute it, not
                    # inherit this request's heuristic fallback.
                    if use_cache and noted_count() == before:
                        self.cache.store(name, key, value)
                seconds = perf_counter() - start
                stage_span.set_attr("cache_hit", hit)
            timings.append(
                StageTiming(stage=name, seconds=seconds, cache_hit=hit)
            )
            self.metrics.observe_stage(name, seconds)
            self.metrics.record_cache(name, hit)
            return value

        program, symbols = run_stage(
            "frontend", keys.frontend, lambda: stage_frontend(source)
        )
        keys.bind_program(program)
        partition, pcfg, template = run_stage(
            "partition", keys.partition,
            lambda: stage_partition(program, symbols, config),
        )
        alignment_spaces = run_stage(
            "alignment", keys.alignment,
            lambda: stage_alignment(
                partition, pcfg, symbols, template, config
            ),
        )
        layout_spaces = run_stage(
            "distribution", keys.distribution,
            lambda: stage_distribution(
                partition, alignment_spaces, template, symbols, config
            ),
        )
        estimates, db = run_stage(
            "estimation", keys.estimation,
            lambda: stage_estimation(
                partition, layout_spaces, symbols, config,
                job_runner=self.pool.run_jobs,
            ),
        )
        graph, selection = run_stage(
            "selection", keys.selection,
            lambda: stage_selection(
                partition, pcfg, estimates, symbols, db, config
            ),
        )
        result = AssistantResult(
            config=config,
            program=program,
            symbols=symbols,
            partition=partition,
            pcfg=pcfg,
            template=template,
            alignment_spaces=alignment_spaces,
            layout_spaces=layout_spaces,
            estimates=estimates,
            graph=graph,
            selection=selection,
            db=db,
        )
        return result, timings

    # -- request handling ------------------------------------------------

    def _request_deadline(
        self, request: LayoutRequest
    ) -> Optional[Deadline]:
        """The solver time budget for one request: the explicit
        ``deadline_s`` if given, else a soft fraction of the hard
        request timeout (leaving headroom to build the degraded
        response before the hard cutoff kills the thread)."""
        if request.deadline_s is not None:
            return Deadline(request.deadline_s)
        if self.request_timeout is not None:
            return Deadline(self.request_timeout * SOFT_DEADLINE_FRACTION)
        return None

    def analyze(self, request: LayoutRequest) -> LayoutResponse:
        """Serve one analyze request (deadline-bounded, never raises).

        Every request runs under its own tracer: span durations feed the
        ``span_seconds`` aggregates in the metrics registry, and the
        full trace is attached to the response when the request asked
        for it.  The tracer — like the deadline and the degradation
        collector — is activated *inside* the pipeline thread
        (ContextVars do not cross threads on their own)."""
        self.metrics.inc("requests_total")
        start = perf_counter()
        # Detail events (per-candidate estimates, CAG edges) only when
        # the client explicitly asked for the trace; the always-on
        # production tracer records structure and summary attrs so its
        # overhead stays inside the tail-sampling budget.
        tracer = tracing.Tracer(name="request", detail=request.trace)
        deadline = self._request_deadline(request)

        def pipeline() -> Tuple[
            AssistantResult, List[StageTiming], List[Dict[str, Any]]
        ]:
            with tracing.activate(tracer):
                with deadline_scope(deadline), collecting() as events:
                    with tracing.span(
                        "request",
                        request_id=request.request_id or "",
                        program=request.program or "<source>",
                    ):
                        result, timings = self._run_pipeline(request)
                    return result, timings, [e.to_dict() for e in events]

        try:
            try:
                if self.request_timeout is not None:
                    executor = ThreadPoolExecutor(max_workers=1)
                    try:
                        future = executor.submit(pipeline)
                        result, timings, degradations = future.result(
                            timeout=self.request_timeout
                        )
                    finally:
                        executor.shutdown(wait=False, cancel_futures=True)
                else:
                    result, timings, degradations = pipeline()
            except FuturesTimeoutError:
                self.metrics.inc("requests_failed")
                self.metrics.inc("requests_timeout")
                logger.warning(
                    "request %s timed out after %ss",
                    request.request_id or "<anonymous>",
                    self.request_timeout,
                )
                self._record_analyze(
                    request, tracer, perf_counter() - start,
                    ok=False, error_kind="timeout",
                )
                return LayoutResponse.failure(
                    RequestTimeoutError(
                        f"request exceeded {self.request_timeout}s"
                    ),
                    request_id=request.request_id,
                )
            except Exception as exc:
                self.metrics.inc("requests_failed")
                logger.warning(
                    "request %s failed: %s",
                    request.request_id or "<anonymous>", exc,
                )
                self._record_analyze(
                    request, tracer, perf_counter() - start,
                    ok=False,
                    error_kind=getattr(exc, "kind", "internal"),
                )
                return LayoutResponse.failure(
                    exc, request_id=request.request_id
                )
        finally:
            self._fold_trace(tracer)
        self.metrics.inc("requests_ok")
        if degradations:
            self.metrics.inc("requests_degraded")
            logger.warning(
                "request %s degraded: %s",
                request.request_id or "<anonymous>",
                "; ".join(
                    f"{d['stage']}:{d['reason']}" for d in degradations
                ),
            )
        seconds = perf_counter() - start
        self.metrics.observe_stage("request", seconds)
        self._record_analyze(
            request, tracer, seconds,
            ok=True, degraded=bool(degradations),
        )
        response = LayoutResponse.from_result(
            result, timings, request_id=request.request_id,
            degradations=degradations,
        )
        if request.trace:
            response.trace = tracer.to_dict()
        return response

    def _record_analyze(
        self,
        request: LayoutRequest,
        tracer: tracing.Tracer,
        seconds: float,
        ok: bool,
        degraded: bool = False,
        error_kind: Optional[str] = None,
    ) -> None:
        """Feed one finished analyze into the sliding window, the event
        log, and the tail sampler (which serializes the trace only when
        it decides to keep it)."""
        self.metrics.observe_op(
            "analyze", seconds, ok=ok, degraded=degraded
        )
        self.telemetry.record_request(
            "analyze", seconds, ok=ok, degraded=degraded,
            request_id=request.request_id, error_kind=error_kind,
            tracer=tracer,
        )

    def _fold_trace(self, tracer: tracing.Tracer) -> None:
        """Fold a request trace's span durations into the registry so
        the Prometheus exposition carries pipeline span aggregates."""
        for name, durations in tracer.durations_by_name().items():
            for seconds in durations:
                self.metrics.observe_span(name, seconds)

    def analyze_dict(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            request = LayoutRequest.from_dict(payload)
        except ServiceError as exc:
            self.metrics.inc("requests_total")
            self.metrics.inc("requests_failed")
            return LayoutResponse.failure(
                exc, request_id=payload.get("request_id")
            ).to_dict()
        return self.analyze(request).to_dict()

    def stats(self) -> Dict[str, Any]:
        pool = self.pool.describe()
        cache_state = self.cache.describe()
        # Mirror pool health into gauges so silent process -> thread ->
        # serial fallbacks surface in every exposition of the registry.
        self.metrics.set_gauge("pool_degradations", pool["degradations"])
        self.metrics.set_gauge(
            "pool_active_serial", 1 if pool["active_kind"] == "serial" else 0
        )
        # Breaker state as gauges: 0 closed, 1 open, 0.5 half-open.
        state_value = {"closed": 0.0, "open": 1.0, "half-open": 0.5}
        for label, breaker in (("pool", pool["breaker"]),
                               ("cache", cache_state["breaker"])):
            self.metrics.set_gauge(
                f"breaker_{label}_open",
                state_value.get(breaker["state"], 0.0),
            )
            self.metrics.set_gauge(
                f"breaker_{label}_opens_total", breaker["opens_total"]
            )
            self.metrics.set_gauge(
                f"breaker_{label}_rejections_total",
                breaker["rejections_total"],
            )
        self.metrics.set_gauge(
            "cache_quarantined_total", cache_state["quarantined_total"]
        )
        snapshot = self.metrics.snapshot()
        snapshot["telemetry"] = self.telemetry.describe()
        snapshot["pool"] = pool
        snapshot["cache"]["disk_entries"] = self.cache.entry_count()
        snapshot["cache"]["dir"] = self.cache.root
        snapshot["cache"]["breaker"] = cache_state["breaker"]
        snapshot["cache"]["quarantined_total"] = (
            cache_state["quarantined_total"]
        )
        return snapshot

    def prometheus(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return render_prometheus(self.stats())

    def slo_report(
        self, objectives: Optional[List[Objective]] = None,
        require_data: bool = False,
    ) -> Dict[str, Any]:
        """Evaluate objectives (given or configured) against the live
        sliding windows; returns the serialized report."""
        report = evaluate_objectives(
            objectives if objectives is not None else self.objectives,
            self.metrics.window_snapshot(),
            require_data=require_data,
        )
        return report.to_dict()

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded protocol message."""
        op = payload.get("op", "analyze")
        logger.debug("handling op %r", op)
        try:
            fault_point("service.request")
        except InjectedFault as exc:
            self.metrics.inc("requests_failed")
            if op in OPS:
                self.metrics.observe_op(op, 0.0, ok=False)
                self.telemetry.record_request(
                    op, 0.0, ok=False, error_kind=exc.kind,
                    request_id=payload.get("request_id"),
                )
            return {"ok": False, "error": str(exc),
                    "error_kind": exc.kind,
                    "request_id": payload.get("request_id")}
        if op == "analyze":
            # analyze records its own telemetry (it has the tracer)
            return self.analyze_dict(payload)
        start = perf_counter()
        response = self._handle_light(op, payload)
        if op in OPS:
            seconds = perf_counter() - start
            ok = bool(response.get("ok"))
            self.metrics.observe_op(op, seconds, ok=ok)
            self.telemetry.record_request(
                op, seconds, ok=ok,
                request_id=payload.get("request_id"),
                error_kind=None if ok else response.get("error_kind"),
            )
        return response

    def _handle_light(
        self, op: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The non-analyze ops (cheap, no tracer of their own)."""
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats()}
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "text": self.prometheus()}
        if op == "slo":
            raw = payload.get("objectives")
            try:
                if raw is not None:
                    if not isinstance(raw, list) or not raw:
                        raise SLOValidationError(
                            "'objectives' must be a non-empty list"
                        )
                    objectives = [Objective.from_dict(o) for o in raw]
                elif self.objectives:
                    objectives = None  # use the configured set
                else:
                    raise SLOValidationError(
                        "no objectives configured on this server; "
                        "pass 'objectives' in the request"
                    )
            except SLOValidationError as exc:
                return {"ok": False, "error": str(exc),
                        "error_kind": "bad-request"}
            require_data = bool(payload.get("require_data", False))
            return {"ok": True, "op": "slo",
                    "report": self.slo_report(
                        objectives, require_data=require_data)}
        if op == "events":
            try:
                limit = int(payload.get("limit", 100))
            except (TypeError, ValueError):
                return {"ok": False,
                        "error": "'limit' must be an integer",
                        "error_kind": "bad-request"}
            events = self.telemetry.events.tail(
                limit=limit, type=payload.get("type")
            )
            return {"ok": True, "op": "events", "events": events,
                    "telemetry": self.telemetry.describe()}
        if op == "shutdown":
            logger.info("shutdown requested over the protocol")
            return {"ok": True, "op": "shutdown"}
        self.metrics.inc("requests_failed")
        logger.warning("rejecting unknown op %r", op)
        return {"ok": False, "error": f"unknown op {op!r}",
                "error_kind": "bad-request"}


class _RequestHandler(socketserver.StreamRequestHandler):
    """One JSON object per line in, one per line out; connections may
    carry any number of requests."""

    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        while True:
            # Bounded read: a line longer than MAX_REQUEST_BYTES gets a
            # typed refusal and the connection closes (the remainder of
            # the oversized line cannot be resynchronized).
            raw = self.rfile.readline(MAX_REQUEST_BYTES + 1)
            if not raw:
                return
            if len(raw) > MAX_REQUEST_BYTES:
                self._reply({
                    "ok": False,
                    "error": (
                        f"request line exceeds {MAX_REQUEST_BYTES} bytes"
                    ),
                    "error_kind": "request-too-large",
                })
                return
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                self._reply({"ok": False,
                             "error": f"bad JSON: {exc}",
                             "error_kind": "bad-request"})
                continue
            try:
                response = self.server.service.handle(payload)
            except Exception as exc:  # defense in depth: never drop the
                # connection without a typed reply
                logger.warning("handler crashed: %s", exc)
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_kind": getattr(exc, "kind", "internal"),
                }
            try:
                self._reply(response)
            except InjectedFault as exc:
                # the reply path itself faulted: try once to tell the
                # client, then give the connection up cleanly
                try:
                    self.wfile.write(json.dumps({
                        "ok": False, "error": str(exc),
                        "error_kind": exc.kind,
                    }).encode("utf-8") + b"\n")
                    self.wfile.flush()
                except OSError:
                    pass
                return
            if payload.get("op") == "shutdown":
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return

    def _reply(self, payload: Dict[str, Any]) -> None:
        fault_point("server.reply")
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()


class LayoutServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front end; one shared :class:`LayoutService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: LayoutService):
        super().__init__(address, _RequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Start serving on a daemon thread (tests, smoke checks)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def send_request(
    payload: Dict[str, Any],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: float = 300.0,
) -> Dict[str, Any]:
    """Client side: one request, one decoded response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        reader = sock.makefile("rb")
        line = reader.readline()
    if not line:
        raise ServiceError("server closed the connection without a reply")
    return json.loads(line)
