"""Worker pool: parallel execution of pure jobs with graceful fallback.

Built on :mod:`concurrent.futures`.  Three kinds:

- ``process`` (default): true parallelism for the CPU-bound compiler /
  execution models;
- ``thread``: no GIL escape, but exercises the identical job path and
  needs no picklable state — the automatic fallback when process pools
  cannot start (restricted sandboxes, missing ``/dev/shm``);
- ``serial``: plain in-process loop, the final fallback and the
  reference behavior.

Robustness contract: per-job timeouts (``job_timeout``), bounded retries
on transient executor failures (``retries``) paced by an injectable
exponential :class:`~repro.resilience.breaker.Backoff` (disabled by
default so tests stay fast), a circuit breaker that drops straight to
serial execution after a run of consecutive executor faults, and
degradation process -> thread -> serial whenever a pool cannot be
(re)built.  Because jobs are pure (see :mod:`repro.service.jobs`), a
retried or serially-degraded job returns exactly what the pooled run
would have.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    CancelledError,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import tracing
from ..resilience.breaker import Backoff, CircuitBreaker
from ..resilience.errors import InjectedFault
from ..resilience.faults import fault_point
from .errors import JobTimeoutError
from .jobs import TRANSIENT_EXECUTOR_ERRORS, build_jobs, run_job

POOL_KINDS = ("process", "thread", "serial")

#: exceptions worth retrying: real executor breakage, injected faults,
#: and futures cancelled when a sibling's failure rebuilt the executor
_RETRIABLE = (InjectedFault, CancelledError, *TRANSIENT_EXECUTOR_ERRORS)


class WorkerPool:
    """A resilient wrapper around one ``concurrent.futures`` executor."""

    def __init__(
        self,
        kind: str = "process",
        max_workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        backoff: Optional[Backoff] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        if kind not in POOL_KINDS:
            raise ValueError(
                f"pool kind must be one of {POOL_KINDS}, got {kind!r}"
            )
        self.requested_kind = kind
        self.active_kind = kind
        self.max_workers = max_workers
        self.job_timeout = job_timeout
        self.retries = max(retries, 0)
        # No waiting unless a backoff is supplied (tests stay instant;
        # the serve CLI passes a real one).
        self.backoff = backoff or Backoff(base_s=0.0)
        self.breaker = breaker or CircuitBreaker(
            name="worker-pool", failure_threshold=5, reset_timeout_s=10.0
        )
        self._executor: Optional[Executor] = None
        self._lock = threading.Lock()
        self.degradations = 0

    # -- executor lifecycle ----------------------------------------------

    def _build(self, kind: str) -> Optional[Executor]:
        """Try to build an executor of ``kind``, degrading down the
        chain process -> thread -> serial on failure."""
        order = POOL_KINDS[POOL_KINDS.index(kind):]
        for candidate in order:
            if candidate != kind:
                self.degradations += 1
            if candidate == "serial":
                self.active_kind = "serial"
                return None
            cls = (ProcessPoolExecutor if candidate == "process"
                   else ThreadPoolExecutor)
            try:
                executor = cls(max_workers=self.max_workers)
                self.active_kind = candidate
                return executor
            except Exception:
                continue
        self.active_kind = "serial"
        return None

    def _ensure(self) -> Optional[Executor]:
        with self._lock:
            if self.active_kind == "serial":
                return None
            if self._executor is None:
                self._executor = self._build(self.active_kind)
            return self._executor

    def _rebuild(self, broken: Optional[Executor]) -> Optional[Executor]:
        """Replace a broken executor (once — concurrent callers that saw
        the same breakage reuse the replacement)."""
        with self._lock:
            if self._executor is not broken:
                return self._executor
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
            self._executor = self._build(self.active_kind)
            return self._executor

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- running jobs ----------------------------------------------------

    def run_jobs(self, fn: Callable[..., Any],
                 argtuples: Sequence[Tuple]) -> List[Any]:
        """Map ``fn`` over the argument tuples; results in input order.

        This is the :data:`repro.perf.estimator.JobRunner` interface, so
        a pool can be handed straight to ``estimate_search_spaces`` /
        ``run_assistant``.

        When a trace is active in the calling context, every job is
        wrapped in :func:`repro.obs.tracing.run_traced_job`: workers
        (subprocess, thread, or degraded-serial alike) collect their
        spans under the caller's trace ID and ship them back with the
        result, so the whole fan-out reports into one trace.
        """
        tracer = tracing.active_tracer()
        if tracer is None:
            return self._dispatch(fn, argtuples)
        with tracing.span(
            f"pool:{getattr(fn, '__name__', 'jobs')}",
            jobs=len(argtuples),
            requested_kind=self.requested_kind,
        ) as pool_span:
            prefix = tracer.new_prefix()
            wrapped = [
                (tracer.trace_id, pool_span.span_id,
                 f"{prefix}{i}.", fn, tuple(args), tracer.detail)
                for i, args in enumerate(argtuples)
            ]
            pairs = self._dispatch(tracing.run_traced_job, wrapped)
            pool_span.set_attr("active_kind", self.active_kind)
            pool_span.set_attr("degradations", self.degradations)
        values: List[Any] = []
        for value, span_dicts in pairs:
            tracer.merge(span_dicts)
            values.append(value)
        return values

    def _dispatch(self, fn: Callable[..., Any],
                  argtuples: Sequence[Tuple]) -> List[Any]:
        """The untraced mapping core shared by both run_jobs paths."""
        jobs = build_jobs(fn, argtuples)
        if not jobs:
            return []
        executor = self._ensure()
        if executor is None or not self.breaker.allow():
            # serial reference path (also the breaker-open fallback:
            # after a run of executor faults the batch runs in-process
            # until the breaker half-opens)
            return [run_job(job).value for job in jobs]
        try:
            fault_point("pool.submit")
            futures = [executor.submit(run_job, job) for job in jobs]
        except (RuntimeError, *_RETRIABLE):
            # the executor died before accepting work — run this batch
            # on whatever the rebuild gives us (possibly serial)
            self.breaker.record_failure()
            self._rebuild(executor)
            return self._run_batch_degraded(jobs)
        results: List[Any] = [None] * len(jobs)
        failures = 0
        for i, future in enumerate(futures):
            try:
                fault_point("pool.result")
                results[i] = future.result(timeout=self.job_timeout).value
            except FuturesTimeoutError:
                future.cancel()
                raise JobTimeoutError(
                    f"job {i} exceeded {self.job_timeout}s in "
                    f"{self.active_kind} pool"
                )
            except _RETRIABLE as exc:
                failures += 1
                self.breaker.record_failure()
                results[i] = self._retry_job(jobs[i], executor, exc)
        if failures == 0:
            self.breaker.record_success()
        return results

    def _run_batch_degraded(self, jobs) -> List[Any]:
        executor = self._ensure()
        if executor is None:
            return [run_job(job).value for job in jobs]
        futures = [executor.submit(run_job, job) for job in jobs]
        out = []
        for i, future in enumerate(futures):
            try:
                fault_point("pool.result")
                out.append(future.result(timeout=self.job_timeout).value)
            except FuturesTimeoutError:
                future.cancel()
                raise JobTimeoutError(
                    f"job {i} exceeded {self.job_timeout}s in "
                    f"{self.active_kind} pool"
                )
            except _RETRIABLE as exc:
                self.breaker.record_failure()
                out.append(self._retry_job(jobs[i], executor, exc))
        return out

    def _retry_job(self, job, broken: Optional[Executor],
                   cause: BaseException) -> Any:
        """Bounded retries (paced by the backoff), then serial in-process.

        Only real executor breakage warrants a rebuild — rebuilding
        cancels the batch's other in-flight futures.  An injected fault
        or a cancellation means the executor itself is healthy, so the
        job is resubmitted to it as-is.
        """
        rebuild = isinstance(cause, TRANSIENT_EXECUTOR_ERRORS)
        for attempt in range(self.retries):
            self.backoff.wait(attempt)
            executor = self._rebuild(broken) if rebuild else self._ensure()
            if executor is None:
                break
            try:
                fault_point("pool.result")
                return executor.submit(run_job, job).result(
                    timeout=self.job_timeout
                ).value
            except FuturesTimeoutError:
                raise JobTimeoutError(
                    f"job {job.index} exceeded {self.job_timeout}s on retry"
                )
            except _RETRIABLE as exc:
                self.breaker.record_failure()
                rebuild = isinstance(exc, TRANSIENT_EXECUTOR_ERRORS)
                broken = executor
                continue
        # graceful degradation: the job is pure, so running it here
        # yields the same value the pool would have produced
        self.degradations += 1
        return run_job(job).value

    # -- introspection ---------------------------------------------------

    def describe(self) -> dict:
        return {
            "requested_kind": self.requested_kind,
            "active_kind": self.active_kind,
            "max_workers": self.max_workers,
            "job_timeout": self.job_timeout,
            "retries": self.retries,
            "degradations": self.degradations,
            "backoff": self.backoff.describe(),
            "breaker": self.breaker.describe(),
        }
