"""Service observability: counters, per-stage cache stats, and wall-time
histograms.

Everything is in-process and thread-safe; a snapshot is a plain dict so
it can travel over the wire protocol and be asserted on in tests.  The
bucket layout follows the usual log-scale convention (Prometheus-style
cumulative ``le`` buckets) over seconds.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.window import DEFAULT_FAST_S, WindowedOpStats

#: histogram bucket upper bounds, in seconds (+inf is implicit).  The
#: sub-millisecond bounds exist because batched estimation (PR 8) pushed
#: several stage times under 1ms — without them every fast stage landed
#: in one bucket and the derived quantiles were pure interpolation.
DEFAULT_BUCKETS = (
    1e-05, 5e-05, 0.0001, 0.00025, 0.0005,
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """A fixed-bucket wall-time histogram (cumulative buckets)."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-derived quantile estimate (the ``histogram_quantile``
        interpolation): find the bucket holding the target rank and
        interpolate linearly inside it, clamped to the observed
        min/max so tiny samples stay sane.  ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if count and cumulative >= target:
                fraction = (target - (cumulative - count)) / count
                value = lower + (bound - lower) * fraction
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
            lower = bound
        # target rank lives in the +Inf bucket: the best finite answer
        # is the observed maximum
        return self.max

    def snapshot(self) -> Dict[str, object]:
        buckets = {}
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
            "quantiles": {
                "p50": self.quantile(0.5),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            },
        }


class Metrics:
    """All service counters behind one lock."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._cache: Dict[str, Dict[str, int]] = {}
        self._stage_seconds: Dict[str, Histogram] = {}
        self._span_seconds: Dict[str, Histogram] = {}
        self._bench_seconds: Dict[str, Histogram] = {}
        self._windows: Dict[str, WindowedOpStats] = {}
        self._clock = clock
        self.started_at = time.time()
        # Uptime is measured on the monotonic clock so it can never go
        # negative or jump when the system clock is adjusted;
        # ``started_at`` stays wall-clock for display only.
        self._started_monotonic = clock()

    # -- recording -------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (pool degradations, active kind...)."""
        with self._lock:
            self._gauges[name] = value

    def record_cache(self, stage: str, hit: bool) -> None:
        with self._lock:
            slot = self._cache.setdefault(stage, {"hits": 0, "misses": 0})
            slot["hits" if hit else "misses"] += 1

    def observe_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            hist = self._stage_seconds.get(stage)
            if hist is None:
                hist = self._stage_seconds[stage] = Histogram()
            hist.observe(seconds)

    def observe_span(self, name: str, seconds: float) -> None:
        """Fold one trace-span duration into the span aggregates."""
        with self._lock:
            hist = self._span_seconds.get(name)
            if hist is None:
                hist = self._span_seconds[name] = Histogram()
            hist.observe(seconds)

    def observe_bench(self, name: str, seconds: float) -> None:
        """Fold one benchmark repetition into the bench aggregates (the
        ``repro bench`` harness exports its results through here)."""
        with self._lock:
            hist = self._bench_seconds.get(name)
            if hist is None:
                hist = self._bench_seconds[name] = Histogram()
            hist.observe(seconds)

    def observe_op(self, op: str, seconds: float, ok: bool = True,
                   degraded: bool = False) -> None:
        """Record one completed service operation into its sliding
        window (the lifetime histograms are unaffected — windows answer
        "now", histograms answer "ever")."""
        with self._lock:
            window = self._windows.get(op)
            if window is None:
                window = self._windows[op] = WindowedOpStats(
                    clock=self._clock
                )
            window.observe(seconds, ok=ok, degraded=degraded)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def _cache_totals_locked(self) -> Tuple[int, int]:
        """Sum cache hits/misses across stages (caller holds the lock)."""
        hits = sum(s["hits"] for s in self._cache.values())
        misses = sum(s["misses"] for s in self._cache.values())
        return hits, misses

    def cache_totals(self) -> Tuple[int, int]:
        with self._lock:
            return self._cache_totals_locked()

    def window_snapshot(
        self, fast_s: float = DEFAULT_FAST_S, sketch: bool = True
    ) -> Dict[str, Any]:
        """Per-op sliding-window views: a ``full``-window and a
        ``fast``-horizon snapshot per op, the input shape of
        :func:`repro.obs.slo.evaluate_objectives`."""
        with self._lock:
            windows = dict(self._windows)
        ops = {
            op: {
                "full": window.snapshot(sketch=sketch),
                "fast": window.snapshot(horizon_s=fast_s, sketch=sketch),
            }
            for op, window in sorted(windows.items())
        }
        window_s = max(
            (w.window_s for w in windows.values()), default=0.0
        )
        return {"window_s": window_s, "fast_s": fast_s, "ops": ops}

    def snapshot(self) -> Dict[str, object]:
        window = self.window_snapshot()
        with self._lock:
            hits, misses = self._cache_totals_locked()
            return {
                "uptime_seconds": self._clock() - self._started_monotonic,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "per_stage": {
                        stage: dict(slot)
                        for stage, slot in sorted(self._cache.items())
                    },
                },
                "stage_seconds": {
                    stage: hist.snapshot()
                    for stage, hist in sorted(self._stage_seconds.items())
                },
                "span_seconds": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._span_seconds.items())
                },
                "bench_seconds": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._bench_seconds.items())
                },
                "window": window,
            }
