"""Service observability: counters, per-stage cache stats, and wall-time
histograms.

Everything is in-process and thread-safe; a snapshot is a plain dict so
it can travel over the wire protocol and be asserted on in tests.  The
bucket layout follows the usual log-scale convention (Prometheus-style
cumulative ``le`` buckets) over seconds.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

#: histogram bucket upper bounds, in seconds (+inf is implicit)
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """A fixed-bucket wall-time histogram (cumulative buckets)."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        buckets = {}
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class Metrics:
    """All service counters behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._cache: Dict[str, Dict[str, int]] = {}
        self._stage_seconds: Dict[str, Histogram] = {}
        self.started_at = time.time()

    # -- recording -------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_cache(self, stage: str, hit: bool) -> None:
        with self._lock:
            slot = self._cache.setdefault(stage, {"hits": 0, "misses": 0})
            slot["hits" if hit else "misses"] += 1

    def observe_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            hist = self._stage_seconds.get(stage)
            if hist is None:
                hist = self._stage_seconds[stage] = Histogram()
            hist.observe(seconds)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def cache_totals(self) -> Tuple[int, int]:
        with self._lock:
            hits = sum(s["hits"] for s in self._cache.values())
            misses = sum(s["misses"] for s in self._cache.values())
        return hits, misses

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            hits = sum(s["hits"] for s in self._cache.values())
            misses = sum(s["misses"] for s in self._cache.values())
            return {
                "uptime_seconds": time.time() - self.started_at,
                "counters": dict(self._counters),
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "per_stage": {
                        stage: dict(slot)
                        for stage, slot in sorted(self._cache.items())
                    },
                },
                "stage_seconds": {
                    stage: hist.snapshot()
                    for stage, hist in sorted(self._stage_seconds.items())
                },
            }
