"""The layout service: a batched, cached, parallel analysis server.

The paper frames the framework as an interactive data layout assistant;
this package turns the one-shot CLI pipeline into a long-lived service:

- :mod:`server`   — the :class:`LayoutService` engine and TCP front end;
- :mod:`cache`    — content-addressed per-stage result cache;
- :mod:`pool`     — resilient ``concurrent.futures`` worker pool;
- :mod:`jobs`     — the pure-function job boundary workers execute;
- :mod:`metrics`  — counters, cache stats, wall-time histograms, and
  per-op sliding windows;
- :mod:`protocol` — JSON request/response schemas;
- :mod:`telemetry`— the service's event log + tail-based trace sampler;
- :mod:`errors`   — the error taxonomy surfaced to clients.
"""

from .cache import StageCache, StageKeys
from .errors import (
    JobTimeoutError,
    RequestTimeoutError,
    RequestValidationError,
    ServiceError,
    WorkerPoolError,
)
from .metrics import Metrics
from .pool import WorkerPool
from .protocol import LayoutRequest, LayoutResponse, StageTiming
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    LayoutServer,
    LayoutService,
    send_request,
)
from .telemetry import ServiceTelemetry, TailSampler

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JobTimeoutError",
    "LayoutRequest",
    "LayoutResponse",
    "LayoutServer",
    "LayoutService",
    "Metrics",
    "RequestTimeoutError",
    "RequestValidationError",
    "ServiceError",
    "ServiceTelemetry",
    "StageCache",
    "StageKeys",
    "StageTiming",
    "TailSampler",
    "WorkerPool",
    "send_request",
]
