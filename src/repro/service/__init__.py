"""The layout service: a batched, cached, parallel analysis server.

The paper frames the framework as an interactive data layout assistant;
this package turns the one-shot CLI pipeline into a long-lived service:

- :mod:`server`   — the :class:`LayoutService` engine and TCP front end;
- :mod:`cache`    — content-addressed per-stage result cache;
- :mod:`pool`     — resilient ``concurrent.futures`` worker pool;
- :mod:`jobs`     — the pure-function job boundary workers execute;
- :mod:`metrics`  — counters, cache stats, wall-time histograms, and
  per-op sliding windows;
- :mod:`protocol` — JSON request/response schemas plus client-side
  retry budgets/backoff honoring ``retry_after_s``;
- :mod:`telemetry`— the service's event log + tail-based trace sampler;
- :mod:`loadtest` — the open-loop load generator behind
  ``repro loadtest`` (fixed arrival schedule, so overload is measured
  instead of hidden by a closed loop);
- :mod:`errors`   — the error taxonomy surfaced to clients.
"""

from .cache import StageCache, StageKeys
from .errors import (
    ConnectionIdleError,
    JobTimeoutError,
    RequestTimeoutError,
    RequestValidationError,
    ServiceError,
    WorkerPoolError,
)
from .loadtest import LoadtestConfig, LoadtestReport, run_loadtest
from .metrics import Metrics
from .pool import WorkerPool
from .protocol import (
    LayoutRequest,
    LayoutResponse,
    RetryBudget,
    RetryPolicy,
    StageTiming,
)
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    LayoutServer,
    LayoutService,
    send_request,
    send_request_with_retries,
)
from .telemetry import ServiceTelemetry, TailSampler

__all__ = [
    "ConnectionIdleError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JobTimeoutError",
    "LayoutRequest",
    "LayoutResponse",
    "LayoutServer",
    "LayoutService",
    "LoadtestConfig",
    "LoadtestReport",
    "Metrics",
    "RequestTimeoutError",
    "RequestValidationError",
    "RetryBudget",
    "RetryPolicy",
    "ServiceError",
    "ServiceTelemetry",
    "StageCache",
    "StageKeys",
    "StageTiming",
    "TailSampler",
    "WorkerPool",
    "run_loadtest",
    "send_request",
    "send_request_with_retries",
]
