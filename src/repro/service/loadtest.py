"""Open-loop load generation: the measurement half of overload proof.

A *closed-loop* client (send, wait, send again) slows down exactly when
the server does, so it physically cannot observe overload — offered
load collapses to match capacity and every latency number looks fine.
This generator is **open-loop** (wrk2-style): request *i* is due at
``t0 + i / rate`` no matter what happened to requests ``0..i-1``, and
latency is measured **from the scheduled arrival time**, so queueing
delay the server causes (or dispatch delay the generator suffers) is
charged to the request instead of silently omitted (the classic
coordinated-omission mistake).

Every completed request is classified into exactly one outcome:

==================  ====================================================
``served``          ``ok`` and, when comparable, identical to the
                    warm-up reference answer
``served-degraded`` ``ok`` with the ``degraded`` label (brownout or
                    deadline fallback — still a valid layout)
``shed``            typed ``overloaded`` / ``shutting-down`` rejection
``timed-out``       typed ``timeout`` from the server
``typed-error``     any other reply carrying an ``error_kind``
``wrong``           ``ok`` but disagrees with the reference — an
                    invariant violation
``untyped-error``   a failure reply with no ``error_kind`` — violation
``no-reply``        connection error, hang past the client timeout, or
                    empty reply — violation
==================  ====================================================

The report gates like ``repro bench gate``: zero violations, optional
p99 budget over admitted requests, optional goodput floor against a
baseline run, optional nonzero-shed requirement (a 2× overload run
that sheds nothing means admission control is not doing its job).
"""

from __future__ import annotations

import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..obs.log import get_logger
from .server import DEFAULT_HOST, DEFAULT_PORT, send_request

SCHEMA = "repro.service/loadtest/v1"

#: rejection kinds that count as clean load shedding, not failure
SHED_KINDS = frozenset({"overloaded", "shutting-down"})

#: outcomes that count toward goodput (a usable layout was returned)
GOOD_OUTCOMES = ("served", "served-degraded")

#: outcomes that are invariant violations under overload
VIOLATION_OUTCOMES = ("wrong", "untyped-error", "no-reply")

logger = get_logger("repro.service.loadtest")


@dataclass
class LoadtestConfig:
    """One open-loop run: ``rate`` arrivals/s for ``duration_s``."""

    rate: float
    duration_s: float
    request: Dict[str, Any] = field(default_factory=dict)
    timeout_s: float = 30.0
    workers: int = 256
    warmup: bool = True

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def total_requests(self) -> int:
        return max(int(math.ceil(self.rate * self.duration_s)), 1)

    @classmethod
    def from_profile(
        cls, data: Mapping[str, Any], **overrides: Any
    ) -> "LoadtestConfig":
        """Build from a JSON profile (``examples/loadtest.json``);
        keyword overrides (CLI flags) win over profile values."""
        known = {"rate", "duration_s", "request", "timeout_s",
                 "workers", "warmup"}
        unknown = set(data) - known - {"schema", "comment"}
        if unknown:
            raise ValueError(
                f"unknown loadtest profile fields: {sorted(unknown)}"
            )
        merged: Dict[str, Any] = {
            key: data[key] for key in known if key in data
        }
        for key, value in overrides.items():
            if value is not None:
                merged[key] = value
        if "rate" not in merged or "duration_s" not in merged:
            raise ValueError(
                "loadtest profile needs 'rate' and 'duration_s'"
            )
        return cls(**merged)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "duration_s": self.duration_s,
            "request": dict(self.request),
            "timeout_s": self.timeout_s,
            "workers": self.workers,
            "warmup": self.warmup,
        }


@dataclass
class _Sample:
    index: int
    outcome: str
    latency_s: float
    dispatch_lag_s: float
    error_kind: Optional[str] = None
    detail: str = ""


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact order-statistic percentile (no interpolation): the value
    at rank ``ceil(q * n)`` — matches how latency SLOs are stated."""
    if not sorted_values:
        return 0.0
    rank = max(int(math.ceil(q * len(sorted_values))), 1)
    return sorted_values[rank - 1]


@dataclass
class LoadtestReport:
    """The outcome of one run, JSON-serializable and gateable."""

    config: Dict[str, Any]
    duration_s: float
    counts: Dict[str, int]
    total: int
    offered_rate: float
    goodput_rps: float
    shed_rate: float
    latency: Dict[str, float]
    error_kinds: Dict[str, int]
    max_dispatch_lag_s: float
    violations: List[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "config": self.config,
            "duration_s": round(self.duration_s, 4),
            "counts": dict(self.counts),
            "total": self.total,
            "offered_rate": round(self.offered_rate, 4),
            "goodput_rps": round(self.goodput_rps, 4),
            "shed_rate": round(self.shed_rate, 6),
            "latency": {k: round(v, 6) for k, v in self.latency.items()},
            "error_kinds": dict(self.error_kinds),
            "max_dispatch_lag_s": round(self.max_dispatch_lag_s, 4),
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoadtestReport":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"not a loadtest report (schema {data.get('schema')!r})"
            )
        return cls(
            config=dict(data.get("config", {})),
            duration_s=float(data["duration_s"]),
            counts=dict(data["counts"]),
            total=int(data["total"]),
            offered_rate=float(data["offered_rate"]),
            goodput_rps=float(data["goodput_rps"]),
            shed_rate=float(data["shed_rate"]),
            latency=dict(data["latency"]),
            error_kinds=dict(data.get("error_kinds", {})),
            max_dispatch_lag_s=float(data.get("max_dispatch_lag_s", 0.0)),
            violations=list(data.get("violations", [])),
        )

    def gate(
        self,
        p99_budget_s: Optional[float] = None,
        baseline: Optional["LoadtestReport"] = None,
        min_goodput_ratio: float = 0.8,
        require_shed: bool = False,
    ) -> List[str]:
        """Gate problems (empty list = pass), mirroring the acceptance
        bar: no violations, admitted p99 within budget, goodput within
        ``min_goodput_ratio`` of the baseline run, and — for the
        overload leg — a nonzero shed count proving admission control
        actually engaged."""
        problems = list(self.violations)
        if p99_budget_s is not None and self.latency.get("p99", 0.0) \
                > p99_budget_s:
            problems.append(
                f"admitted p99 {self.latency['p99']:.3f}s exceeds "
                f"budget {p99_budget_s:.3f}s"
            )
        if baseline is not None:
            floor = baseline.goodput_rps * min_goodput_ratio
            if self.goodput_rps < floor:
                problems.append(
                    f"goodput {self.goodput_rps:.2f} rps is below "
                    f"{min_goodput_ratio:.0%} of baseline "
                    f"{baseline.goodput_rps:.2f} rps"
                )
        if require_shed and self.counts.get("shed", 0) == 0:
            problems.append(
                "overload run shed nothing — admission control "
                "never engaged"
            )
        return problems

    def summary(self) -> str:
        lines = [
            f"loadtest: {self.total} requests at "
            f"{self.offered_rate:.1f}/s offered over "
            f"{self.duration_s:.1f}s",
            "  outcomes: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.counts.items())
                if count
            ),
            f"  goodput: {self.goodput_rps:.2f} rps   "
            f"shed rate: {self.shed_rate:.1%}",
            f"  admitted latency: p50={self.latency.get('p50', 0):.3f}s "
            f"p90={self.latency.get('p90', 0):.3f}s "
            f"p99={self.latency.get('p99', 0):.3f}s "
            f"max={self.latency.get('max', 0):.3f}s",
        ]
        if self.max_dispatch_lag_s > 0.05:
            lines.append(
                "  generator dispatch lagged schedule by up to "
                f"{self.max_dispatch_lag_s:.3f}s (raise --workers if "
                "this approaches the latency numbers)"
            )
        if self.violations:
            lines.append("  VIOLATIONS: " + "; ".join(self.violations))
        return "\n".join(lines)


def _comparable(resp: Mapping[str, Any]) -> Optional[tuple]:
    """The answer fingerprint used for wrong-answer detection; only
    non-degraded responses are comparable (degraded ones are allowed
    to differ — that is what the label is for)."""
    if not resp.get("ok") or resp.get("degraded"):
        return None
    layouts = resp.get("layouts")
    if layouts is None:
        return None
    return (
        resp.get("predicted_total_us"),
        json.dumps(layouts, sort_keys=True),
    )


def _classify(
    resp: Mapping[str, Any], reference: Optional[tuple]
) -> _Sample:
    """Outcome of one reply (index/latency filled in by the caller)."""
    if resp.get("ok"):
        fingerprint = _comparable(resp)
        if (reference is not None and fingerprint is not None
                and fingerprint != reference):
            return _Sample(0, "wrong", 0.0, 0.0,
                           detail="answer differs from reference")
        if resp.get("degraded"):
            return _Sample(0, "served-degraded", 0.0, 0.0)
        return _Sample(0, "served", 0.0, 0.0)
    kind = resp.get("error_kind")
    if kind in SHED_KINDS:
        return _Sample(0, "shed", 0.0, 0.0, error_kind=kind)
    if kind == "timeout":
        return _Sample(0, "timed-out", 0.0, 0.0, error_kind=kind)
    if kind:
        return _Sample(0, "typed-error", 0.0, 0.0, error_kind=kind)
    return _Sample(0, "untyped-error", 0.0, 0.0,
                   detail=str(resp.get("error", ""))[:200])


def run_loadtest(
    config: LoadtestConfig,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    send: Optional[Callable[..., Dict[str, Any]]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> LoadtestReport:
    """Drive one open-loop run and classify every outcome.

    ``send(payload, host=..., port=..., timeout=...)`` is injectable so
    tests can run against an in-process :class:`LayoutService` without
    a TCP server."""
    send_fn = send or send_request
    base = dict(config.request)
    base.setdefault("op", "analyze")

    reference: Optional[tuple] = None
    if config.warmup:
        # one uncounted request: establishes the reference answer for
        # wrong-detection and absorbs cold-start costs (imports, cache)
        warm = dict(base)
        warm["request_id"] = "loadtest-warmup"
        try:
            warm_resp = send_fn(
                warm, host=host, port=port, timeout=config.timeout_s
            )
            reference = _comparable(warm_resp)
            if not warm_resp.get("ok"):
                logger.warning(
                    "loadtest warmup failed (%s); wrong-answer "
                    "detection disabled", warm_resp.get("error_kind"),
                )
        except Exception as exc:
            raise RuntimeError(
                f"loadtest warmup could not reach the server: {exc}"
            ) from exc

    total = config.total_requests
    interval = 1.0 / config.rate
    samples: List[Optional[_Sample]] = [None] * total
    started = threading.Event()
    t0_box: List[float] = [0.0]

    def fire(index: int) -> None:
        started.wait()
        scheduled = t0_box[0] + index * interval
        delay = scheduled - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        lag = max(time.monotonic() - scheduled, 0.0)
        payload = dict(base)
        payload["request_id"] = f"loadtest-{index:06d}"
        try:
            resp = send_fn(
                payload, host=host, port=port, timeout=config.timeout_s
            )
        except Exception as exc:
            samples[index] = _Sample(
                index, "no-reply",
                latency_s=time.monotonic() - scheduled,
                dispatch_lag_s=lag,
                detail=f"{type(exc).__name__}: {exc}"[:200],
            )
            return
        sample = _classify(resp, reference)
        sample.index = index
        # open-loop latency: from the *scheduled* arrival, so both
        # server queueing and generator dispatch lag are charged
        sample.latency_s = time.monotonic() - scheduled
        sample.dispatch_lag_s = lag
        samples[index] = sample

    run_start = time.monotonic()
    with ThreadPoolExecutor(max_workers=config.workers) as executor:
        futures = [executor.submit(fire, i) for i in range(total)]
        t0_box[0] = time.monotonic()
        started.set()
        done = 0
        for future in futures:
            future.result()
            done += 1
            if progress and done % max(total // 10, 1) == 0:
                progress(f"{done}/{total} requests resolved")
    duration = time.monotonic() - run_start

    counts: Dict[str, int] = {}
    error_kinds: Dict[str, int] = {}
    good_latencies: List[float] = []
    max_lag = 0.0
    violations: List[str] = []
    for sample in samples:
        assert sample is not None  # every future resolved above
        counts[sample.outcome] = counts.get(sample.outcome, 0) + 1
        if sample.error_kind:
            error_kinds[sample.error_kind] = (
                error_kinds.get(sample.error_kind, 0) + 1
            )
        if sample.outcome in GOOD_OUTCOMES:
            good_latencies.append(sample.latency_s)
        max_lag = max(max_lag, sample.dispatch_lag_s)
    for outcome in VIOLATION_OUTCOMES:
        if counts.get(outcome, 0):
            example = next(
                s.detail for s in samples
                if s is not None and s.outcome == outcome
            )
            violations.append(
                f"{counts[outcome]} {outcome} response(s)"
                + (f" (e.g. {example})" if example else "")
            )
    good_latencies.sort()
    good = sum(counts.get(name, 0) for name in GOOD_OUTCOMES)
    shed = counts.get("shed", 0)
    return LoadtestReport(
        config=config.to_dict(),
        duration_s=duration,
        counts=counts,
        total=total,
        offered_rate=config.rate,
        goodput_rps=good / duration if duration > 0 else 0.0,
        shed_rate=shed / total if total else 0.0,
        latency={
            "p50": _percentile(good_latencies, 0.50),
            "p90": _percentile(good_latencies, 0.90),
            "p99": _percentile(good_latencies, 0.99),
            "max": good_latencies[-1] if good_latencies else 0.0,
        },
        error_kinds=error_kinds,
        max_dispatch_lag_s=max_lag,
        violations=violations,
    )
