"""The worker-pool job boundary.

A *job* is a pure, picklable unit of work: a module-level function plus
an argument tuple, tagged with its submission index.  Workers return
``JobResult(index, value)`` and the pool reassembles results strictly by
index, so the combined output is a deterministic function of the inputs
regardless of worker scheduling, pool kind, or retries.

The estimation stage is the one hot fan-out today (one job per phase,
see :func:`repro.perf.estimator.estimate_phase_candidates`), but the
boundary is generic — anything pure and picklable can go through it.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

#: executor-level failures worth retrying — the job itself did not run
#: (or died with the worker); application errors raised by the job
#: function propagate unwrapped instead.
TRANSIENT_EXECUTOR_ERRORS: Tuple[type, ...] = (BrokenExecutor, OSError)


@dataclass(frozen=True)
class Job:
    """One unit of work: ``fn(*args)`` with a stable position."""

    index: int
    fn: Callable[..., Any]
    args: Tuple


@dataclass(frozen=True)
class JobResult:
    """A job's return value, tagged for order-independent assembly."""

    index: int
    value: Any


def run_job(job: Job) -> JobResult:
    """Execute one job (in whatever worker it landed on)."""
    return JobResult(index=job.index, value=job.fn(*job.args))


def build_jobs(fn: Callable[..., Any],
               argtuples: Sequence[Tuple]) -> List[Job]:
    return [Job(index=i, fn=fn, args=tuple(args))
            for i, args in enumerate(argtuples)]
