"""Content-addressed, per-stage result cache.

Every pipeline stage's output is stored under a key derived from the
*content* that determines it — never from object identity or wall-clock
time.  The keying scheme is a hash chain along the pipeline:

- ``frontend``     <- sha256 of the raw source text (the only content
  available before parsing);
- ``program key``  <- sha256 of the *normalized* program (the pretty
  printer's canonical rendering of the inlined AST), computed after the
  frontend stage.  Downstream keys chain from this, so two sources that
  differ only in whitespace or comments share every later stage;
- ``partition``    <- program key + branch-probability settings;
- ``alignment``    <- partition key + ILP backend;
- ``distribution`` <- alignment key + nprocs + distribution options;
- ``estimation``   <- distribution key + machine parameters + compiler
  options;
- ``selection``    <- estimation key + ILP backend.

Machine and compiler parameters enter the chain only at the estimation
stage, so swapping machines reuses everything up to and including the
distribution stage; changing nprocs invalidates from the distribution
stage down; editing only branch probabilities keeps the frontend hit.

Storage is two-level: a small in-memory LRU in front of one pickle file
per entry (``<root>/<stage>/<key>.pkl``).  Corrupt or unreadable files
are treated as misses and deleted — a damaged cache can cost a
recompute, never a wrong answer or a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..frontend.printer import format_program
from ..perf.training import machine_cache_key
from ..tool.assistant import AssistantConfig

#: bump when a stage's output format changes incompatibly
CACHE_VERSION = "v1"

#: in-memory LRU entries kept in front of the disk store
_MEMORY_ENTRIES = 64


def _sha256(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class StageKeys:
    """The hash chain for one request (source + config)."""

    def __init__(self, source: str, config: AssistantConfig):
        self.config = config
        cfg = config.to_dict()
        self._branch = _canonical({
            "branch_probability": cfg["branch_probability"],
            "branch_prob_overrides": cfg["branch_prob_overrides"],
        })
        self._backend = cfg["ilp_backend"]
        self._dist = _canonical(cfg["distributions"])
        self._compiler = _canonical(cfg["compiler"])
        self._nprocs = str(cfg["nprocs"])
        self._machine = machine_cache_key(config.machine)

        self.frontend = _sha256("frontend", CACHE_VERSION, source)
        # downstream keys need the normalized program; they are derived
        # lazily once the frontend stage has produced it.
        self.program_key: Optional[str] = None

    def bind_program(self, program) -> None:
        """Derive the normalized-AST key once the frontend stage ran (or
        hit); every downstream key chains from it."""
        self.program_key = _sha256(
            "program", CACHE_VERSION, format_program(program)
        )

    def _require_program(self) -> str:
        if self.program_key is None:
            raise RuntimeError("bind_program() must run before stage keys")
        return self.program_key

    @property
    def partition(self) -> str:
        return _sha256("partition", self._require_program(), self._branch)

    @property
    def alignment(self) -> str:
        return _sha256("alignment", self.partition, self._backend)

    @property
    def distribution(self) -> str:
        return _sha256(
            "distribution", self.alignment, self._nprocs, self._dist
        )

    @property
    def estimation(self) -> str:
        return _sha256(
            "estimation", self.distribution, self._machine, self._compiler
        )

    @property
    def selection(self) -> str:
        return _sha256("selection", self.estimation, self._backend)

    def key_for(self, stage: str) -> str:
        return getattr(self, stage)


class StageCache:
    """Two-level (memory LRU + disk) pickle store, keyed per stage.

    ``root=None`` keeps the cache purely in memory — useful for tests
    and for serving without a writable filesystem.
    """

    def __init__(self, root: Optional[str] = None,
                 memory_entries: int = _MEMORY_ENTRIES):
        self.root = root
        self._memory: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()
        if root:
            os.makedirs(root, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _path(self, stage: str, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, stage, f"{key}.pkl")

    # -- operations ------------------------------------------------------

    def load(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corruption counts as a miss."""
        mem_key = (stage, key)
        with self._lock:
            if mem_key in self._memory:
                self._memory.move_to_end(mem_key)
                return True, self._memory[mem_key]
        if not self.root:
            return False, None
        path = self._path(stage, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # damaged entry: drop it and recompute
            try:
                os.remove(path)
            except OSError:
                pass
            return False, None
        self._remember(mem_key, value)
        return True, value

    def store(self, stage: str, key: str, value: Any) -> None:
        self._remember((stage, key), value)
        if not self.root:
            return
        path = self._path(stage, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # write-then-rename so concurrent readers never see a torn file
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # a read-only or full disk degrades to memory-only caching
            try:
                os.remove(tmp)
            except OSError:
                pass

    def _remember(self, mem_key: Tuple[str, str], value: Any) -> None:
        with self._lock:
            self._memory[mem_key] = value
            self._memory.move_to_end(mem_key)
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    def entry_count(self) -> Dict[str, int]:
        """Disk entries per stage (for stats)."""
        counts: Dict[str, int] = {}
        if not self.root or not os.path.isdir(self.root):
            return counts
        for stage in sorted(os.listdir(self.root)):
            stage_dir = os.path.join(self.root, stage)
            if os.path.isdir(stage_dir):
                counts[stage] = len([
                    f for f in os.listdir(stage_dir) if f.endswith(".pkl")
                ])
        return counts
