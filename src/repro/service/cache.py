"""Content-addressed, per-stage result cache.

Every pipeline stage's output is stored under a key derived from the
*content* that determines it — never from object identity or wall-clock
time.  The keying scheme is a hash chain along the pipeline:

- ``frontend``     <- sha256 of the raw source text (the only content
  available before parsing);
- ``program key``  <- sha256 of the *normalized* program (the pretty
  printer's canonical rendering of the inlined AST), computed after the
  frontend stage.  Downstream keys chain from this, so two sources that
  differ only in whitespace or comments share every later stage;
- ``partition``    <- program key + branch-probability settings;
- ``alignment``    <- partition key + ILP backend;
- ``distribution`` <- alignment key + nprocs + distribution options;
- ``estimation``   <- distribution key + machine parameters + compiler
  options;
- ``selection``    <- estimation key + ILP backend.

Machine and compiler parameters enter the chain only at the estimation
stage, so swapping machines reuses everything up to and including the
distribution stage; changing nprocs invalidates from the distribution
stage down; editing only branch probabilities keeps the frontend hit.

Storage is two-level: a small in-memory LRU in front of one pickle file
per entry (``<root>/<stage>/<key>.pkl``).  On-disk entries carry a
checksum footer (:mod:`repro.resilience.atomic`) and are written
atomically; a corrupt or unreadable file is *quarantined* (renamed
aside, never silently deleted) and treated as a miss — a damaged cache
can cost a recompute, never a wrong answer or a crash.  Disk I/O is
guarded by a circuit breaker: a run of consecutive I/O failures drops
the cache to memory-only until the breaker's reset timeout.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..frontend.printer import format_program
from ..obs import telemetry
from ..perf.training import machine_cache_key
from ..resilience.atomic import (
    atomic_write_bytes,
    checksum_unwrap,
    checksum_wrap,
    quarantine,
)
from ..resilience.breaker import CircuitBreaker
from ..resilience.errors import CorruptStateError, InjectedFault
from ..resilience.faults import corrupt_point, fault_point
from ..tool.assistant import AssistantConfig

#: bump when a stage's output format changes incompatibly
#: (v2: checksum footers on disk entries)
CACHE_VERSION = "v2"

#: in-memory LRU entries kept in front of the disk store
_MEMORY_ENTRIES = 64


def _sha256(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class StageKeys:
    """The hash chain for one request (source + config)."""

    def __init__(self, source: str, config: AssistantConfig):
        self.config = config
        cfg = config.to_dict()
        self._branch = _canonical({
            "branch_probability": cfg["branch_probability"],
            "branch_prob_overrides": cfg["branch_prob_overrides"],
        })
        self._backend = cfg["ilp_backend"]
        self._dist = _canonical(cfg["distributions"])
        self._compiler = _canonical(cfg["compiler"])
        self._nprocs = str(cfg["nprocs"])
        self._machine = machine_cache_key(config.machine)

        self.frontend = _sha256("frontend", CACHE_VERSION, source)
        # downstream keys need the normalized program; they are derived
        # lazily once the frontend stage has produced it.
        self.program_key: Optional[str] = None

    def bind_program(self, program) -> None:
        """Derive the normalized-AST key once the frontend stage ran (or
        hit); every downstream key chains from it."""
        self.program_key = _sha256(
            "program", CACHE_VERSION, format_program(program)
        )

    def _require_program(self) -> str:
        if self.program_key is None:
            raise RuntimeError("bind_program() must run before stage keys")
        return self.program_key

    @property
    def partition(self) -> str:
        return _sha256("partition", self._require_program(), self._branch)

    @property
    def alignment(self) -> str:
        return _sha256("alignment", self.partition, self._backend)

    @property
    def distribution(self) -> str:
        return _sha256(
            "distribution", self.alignment, self._nprocs, self._dist
        )

    @property
    def estimation(self) -> str:
        return _sha256(
            "estimation", self.distribution, self._machine, self._compiler
        )

    @property
    def selection(self) -> str:
        return _sha256("selection", self.estimation, self._backend)

    def key_for(self, stage: str) -> str:
        return getattr(self, stage)


class StageCache:
    """Two-level (memory LRU + disk) pickle store, keyed per stage.

    ``root=None`` keeps the cache purely in memory — useful for tests
    and for serving without a writable filesystem.
    """

    def __init__(self, root: Optional[str] = None,
                 memory_entries: int = _MEMORY_ENTRIES,
                 breaker: Optional[CircuitBreaker] = None):
        self.root = root
        self._memory: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()
        self.breaker = breaker or CircuitBreaker(
            name="cache-disk", failure_threshold=5, reset_timeout_s=10.0
        )
        self.quarantined_total = 0
        if root:
            os.makedirs(root, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _path(self, stage: str, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, stage, f"{key}.pkl")

    def _quarantine(self, path: str) -> None:
        moved = quarantine(path)
        if moved is not None:
            self.quarantined_total += 1
            telemetry.emit(
                "cache.quarantine", path=path, moved_to=moved,
                quarantined_total=self.quarantined_total,
            )

    # -- operations ------------------------------------------------------

    def load(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corruption counts as a miss."""
        mem_key = (stage, key)
        with self._lock:
            if mem_key in self._memory:
                self._memory.move_to_end(mem_key)
                return True, self._memory[mem_key]
        if not self.root or not self.breaker.allow():
            return False, None
        path = self._path(stage, key)
        try:
            fault_point("cache.load")
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.breaker.record_success()
            return False, None
        except (InjectedFault, OSError):
            # the disk itself misbehaved: count it against the breaker
            self.breaker.record_failure()
            return False, None
        self.breaker.record_success()
        blob = corrupt_point("cache.load", blob)
        try:
            payload = checksum_unwrap(blob, label=path)
            value = pickle.loads(payload)
        except (CorruptStateError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, ValueError):
            # damaged entry: move it aside and recompute (the read
            # succeeded, so this is data rot, not a disk fault)
            self._quarantine(path)
            return False, None
        self._remember(mem_key, value)
        return True, value

    def store(self, stage: str, key: str, value: Any) -> None:
        self._remember((stage, key), value)
        if not self.root or not self.breaker.allow():
            return
        path = self._path(stage, key)
        blob = checksum_wrap(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        blob = corrupt_point("cache.store", blob)
        try:
            fault_point("cache.store")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            atomic_write_bytes(path, blob)
        except (InjectedFault, OSError):
            # a read-only or full disk degrades to memory-only caching
            self.breaker.record_failure()
            return
        self.breaker.record_success()

    def _remember(self, mem_key: Tuple[str, str], value: Any) -> None:
        with self._lock:
            self._memory[mem_key] = value
            self._memory.move_to_end(mem_key)
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    def entry_count(self) -> Dict[str, int]:
        """Disk entries per stage (for stats)."""
        counts: Dict[str, int] = {}
        if not self.root or not os.path.isdir(self.root):
            return counts
        for stage in sorted(os.listdir(self.root)):
            stage_dir = os.path.join(self.root, stage)
            if os.path.isdir(stage_dir):
                counts[stage] = len([
                    f for f in os.listdir(stage_dir) if f.endswith(".pkl")
                ])
        return counts

    def describe(self) -> Dict[str, Any]:
        """Resilience-facing state (breaker + quarantine counters)."""
        return {
            "breaker": self.breaker.describe(),
            "quarantined_total": self.quarantined_total,
        }
