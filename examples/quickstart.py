#!/usr/bin/env python3
"""Quickstart: automatic data layout for a small Fortran kernel.

Runs the paper's four framework steps on a five-point-stencil + sweep
kernel and prints the candidate search spaces, the selected layout, and a
simulated execution of the choice.

    python examples/quickstart.py
"""

from repro import AssistantConfig, measure_layouts, run_assistant
from repro.tool.report import format_search_spaces, format_selection

SOURCE = """
program demo
      implicit none
      integer n, steps
      parameter (n = 128, steps = 10)
      double precision u(n, n), f(n, n)
      integer i, j, t

c initialize the field and the right-hand side
      do j = 1, n
        do i = 1, n
          u(i, j) = 0.0
          f(i, j) = 1.0 / (i + j)
        enddo
      enddo

      do t = 1, steps
c five-point stencil relaxation (parallel in both dimensions)
        do j = 2, n - 1
          do i = 2, n - 1
            u(i, j) = 0.25 * (f(i + 1, j) + f(i - 1, j) +&
                              f(i, j + 1) + f(i, j - 1))
          enddo
        enddo
c line sweep along the first dimension (flow dependence on i)
        do j = 1, n
          do i = 2, n
            u(i, j) = u(i, j) - 0.5 * u(i - 1, j)
          enddo
        enddo
c copy back
        do j = 1, n
          do i = 1, n
            f(i, j) = u(i, j)
          enddo
        enddo
      enddo
      end
"""


def main() -> None:
    # Step 0: pick the target — machine, processors, compiler model.
    config = AssistantConfig(nprocs=16)

    # Steps 1-4: partition into phases, build search spaces, estimate,
    # select optimally with 0-1 integer programming.
    result = run_assistant(SOURCE, config)

    print("=== candidate search spaces (browsable) ===")
    print(format_search_spaces(result))
    print()
    print("=== selected layout ===")
    print(format_selection(result))

    # Validate the choice on the simulated iPSC/860.
    measurement = measure_layouts(
        SOURCE, result.selected_layouts, nprocs=config.nprocs
    )
    print()
    print(f"simulated execution: {measurement.seconds:.4f} s "
          f"({measurement.messages} messages, "
          f"{measurement.remap_count} remaps)")
    print(f"assistant predicted: {result.predicted_total_us / 1e6:.4f} s")


if __name__ == "__main__":
    main()
