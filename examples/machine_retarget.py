#!/usr/bin/env python3
"""Retargeting: the same program, two machines, different best layouts.

The framework is parameterized by the machine model (training sets are
regenerated per machine).  On the iPSC/860, whose messages are expensive,
Adi's fine-grain pipelines hurt and remapping can win; on a
Paragon-flavoured machine with ~30x the bandwidth, the trade-offs shift.
The assistant re-decides per machine — no code changes.

    python examples/machine_retarget.py
"""

from repro import AssistantConfig, run_assistant
from repro.machine import IPSC860, PARAGON
from repro.programs import PROGRAMS
from repro.tool.measurement import measure_layouts
from repro.tool.schemes import enumerate_schemes


def main() -> None:
    source = PROGRAMS["adi"].source(n=256, dtype="double", maxiter=3)
    for machine in (IPSC860, PARAGON):
        result = run_assistant(
            source, AssistantConfig(nprocs=16, machine=machine)
        )
        schemes = enumerate_schemes(result)
        dynamic = "dynamic" if result.is_dynamic else "static"
        print(f"--- {machine.name} ---")
        print(f"selected: {dynamic} layout, predicted "
              f"{result.predicted_total_us / 1e6:.4f} s")
        for scheme in schemes:
            print(f"   {scheme.name:<10} estimated "
                  f"{scheme.estimated_us / 1e6:.4f} s")
        m = measure_layouts(
            source, result.selected_layouts, nprocs=16, machine=machine
        )
        print(f"simulated execution of the choice: {m.seconds:.4f} s\n")


if __name__ == "__main__":
    main()
