#!/usr/bin/env python3
"""Laying out a program written with subroutines.

The paper's prototype analyzes single procedures only — its authors ran a
hand-inlined Erlebacher.  The tool automates that: multi-unit files are
inlined before the four framework steps, so each call site gets its own
phases (and can get its own layout).

Here a line-sweep solver is called along both directions; after inlining
the assistant sees the same structure as the hand-written ADI kernel and
picks a layout accordingly.

    python examples/subroutines.py
"""

from repro import AssistantConfig, measure_layouts, run_assistant
from repro.frontend import parse_and_inline
from repro.frontend.printer import format_program
from repro.tool.report import format_selection

SOURCE = """
program twosweeps
      implicit none
      integer n, steps
      parameter (n = 128, steps = 6)
      double precision u(n, n), cx(n, n), cy(n, n)
      integer i, j, t

      do j = 1, n
        do i = 1, n
          u(i, j) = 1.0 / (i + j)
          cx(i, j) = 0.25
          cy(i, j) = 0.25
        enddo
      enddo

      do t = 1, steps
        call sweepi(u, cx, n)
        call sweepj(u, cy, n)
      enddo
      end

subroutine sweepi(x, c, m)
      implicit none
      integer m
      double precision x(m, m), c(m, m)
      integer i, j
      do j = 1, m
        do i = 2, m
          x(i, j) = x(i, j) - c(i, j) * x(i - 1, j)
        enddo
      enddo
      end

subroutine sweepj(x, c, m)
      implicit none
      integer m
      double precision x(m, m), c(m, m)
      integer i, j
      do j = 2, m
        do i = 1, m
          x(i, j) = x(i, j) - c(i, j) * x(i, j - 1)
        enddo
      enddo
      end
"""


def main() -> None:
    inlined = parse_and_inline(SOURCE)
    print("=== inlined program (what the framework analyzes) ===")
    print(format_program(inlined))

    result = run_assistant(SOURCE, AssistantConfig(nprocs=16))
    print("=== selected layout ===")
    print(format_selection(result))

    m = measure_layouts(SOURCE, result.selected_layouts, nprocs=16)
    print(f"\nsimulated execution: {m.seconds:.4f} s "
          f"({m.remap_count} remaps)")


if __name__ == "__main__":
    main()
