#!/usr/bin/env python3
"""Case study: reproducing the paper's Adi experiment (Figure 3/4).

Sweeps the Adi kernel across processor counts, measuring every promising
global layout scheme on the simulated iPSC/860 and comparing against the
assistant's estimates — the static-vs-dynamic trade-off that motivates
the whole framework:

* a static **row** layout fine-grain-pipelines the two i-direction
  sweeps;
* a static **column** layout *sequentializes* the two j-direction sweeps
  (always the worst choice);
* the **remapped** layout transposes the data between the sweep halves so
  every phase is dependence-local, at the price of four redistributions
  per time step.

Where the crossover falls depends on problem size and machine size —
exactly what the assistant decides per configuration.

    python examples/adi_case_study.py [n]
"""

import sys

from repro.tool import TestCase, run_test_case
from repro.tool.report import format_test_case
from repro.tool.schemes import TOOL, matching_scheme


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    print(f"Adi {n}x{n}, double precision, 3 time steps\n")
    print(f"{'procs':>5} {'row':>10} {'column':>10} {'remapped':>10} "
          f"{'tool pick':>12} {'verdict':>10}")
    for procs in (2, 4, 8, 16, 32):
        result = run_test_case(
            TestCase("adi", n=n, dtype="double", nprocs=procs, maxiter=3)
        )
        by = {s.name: s for s in result.schemes}
        picked = matching_scheme(result.schemes,
                                 result.tool_scheme.selection)
        picked_name = picked.name if picked else "dynamic"
        verdict = "optimal" if result.tool_optimal else (
            f"+{result.loss_percent:.1f}%"
        )
        print(f"{procs:>5} "
              f"{by['row'].measured_us/1e6:>9.3f}s "
              f"{by['column'].measured_us/1e6:>9.3f}s "
              f"{by['remapped'].measured_us/1e6:>9.3f}s "
              f"{picked_name:>12} {verdict:>10}")

    print("\nFull table for the Figure 3 configuration "
          f"({n}x{n}, 16 processors):")
    result = run_test_case(
        TestCase("adi", n=n, dtype="double", nprocs=16, maxiter=3)
    )
    print(format_test_case(result))


if __name__ == "__main__":
    main()
