#!/usr/bin/env python3
"""Laying out a user-written program with an alignment conflict.

This example writes a small mesh-relaxation code in which a workspace
array is accessed *transposed* in one phase — an inter-dimensional
alignment conflict that no single alignment can satisfy.  The assistant

1. detects the conflict (a path between two dimensions of ``w`` in the
   merged component affinity graph),
2. partitions the phases into two conflict-free classes,
3. exchanges alignment information between the classes via weighted
   imports (each resolved optimally by the 0-1 formulation), and
4. weighs transposed-workspace candidates against remapping and
   communication costs in the final selection.

    python examples/custom_program.py
"""

from repro import AssistantConfig, measure_layouts, run_assistant
from repro.tool.report import format_search_spaces, format_selection

SOURCE = """
program relax
      implicit none
      integer n, steps
      parameter (n = 96, steps = 8)
      double precision grid(n, n), w(n, n)
      integer i, j, t

      do j = 1, n
        do i = 1, n
          grid(i, j) = 0.01 * i + 0.02 * j
          w(i, j) = 0.0
        enddo
      enddo

      do t = 1, steps
c workspace written canonically alongside the grid
        do j = 2, n - 1
          do i = 2, n - 1
            w(i, j) = grid(i + 1, j) - 2.0 * grid(i, j) + grid(i - 1, j)
          enddo
        enddo
c ...but consumed TRANSPOSED: the alignment conflict
        do j = 2, n - 1
          do i = 2, n - 1
            grid(i, j) = grid(i, j) + 0.2 * w(j, i)
          enddo
        enddo
      enddo
      end
"""


def main() -> None:
    result = run_assistant(SOURCE, AssistantConfig(nprocs=8))

    spaces = result.alignment_spaces
    print(f"alignment classes: {len(spaces.classes)}")
    print(f"conflicts resolved by 0-1 programming: "
          f"{len(spaces.resolutions)}")
    for res in spaces.resolutions:
        print(f"  model: {res.num_variables} variables, "
              f"{res.num_constraints} constraints, "
              f"cut weight {res.cut_weight:g} "
              f"({res.solution.stats.wall_time * 1000:.0f} ms)")
    print()
    print(format_search_spaces(result))
    print()
    print(format_selection(result))

    measurement = measure_layouts(
        SOURCE, result.selected_layouts, nprocs=8
    )
    print()
    print(f"simulated execution of the choice: "
          f"{measurement.seconds:.4f} s "
          f"({measurement.remap_count} remaps)")


if __name__ == "__main__":
    main()
