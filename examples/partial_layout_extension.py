#!/usr/bin/env python3
"""Extending a partially specified layout — the paper's second use case.

"Once the user has chosen data layouts for program parts crucial for the
overall performance, the layout assistant tool can be used to extend
these data layouts to a data layout for the entire program."

Here the user pins the Erlebacher z computation to a dim-3 distribution
(say, to match a neighbouring code's interface, even though it
sequentializes the z sweeps); the assistant extends that partial
specification optimally over the remaining 27 phases by re-running the
selection step with the pinned phases restricted.

    python examples/partial_layout_extension.py
"""

from repro import AssistantConfig, run_assistant
from repro.programs import PROGRAMS
from repro.tool.measurement import measure_layouts


def main() -> None:
    source = PROGRAMS["erlebacher"].source(n=48)
    result = run_assistant(source, AssistantConfig(nprocs=16))

    # The z computation is phases 27..39 (the last symmetric third).
    pinned_phases = [p.index for p in result.partition.phases[27:]]

    # Pin those phases to their dim-3 (template dimension 2) candidates.
    allowed = {}
    for idx in pinned_phases:
        cands = result.layout_spaces.per_phase[idx]
        positions = {
            pos for pos, cand in enumerate(cands)
            if cand.layout.distribution.distributed_dims() == (2,)
        }
        if positions:
            allowed[idx] = positions

    free = result.selection
    extended = result.reselect(allowed=allowed)

    print("unconstrained optimum:   "
          f"{free.objective / 1e6:.4f} s predicted")
    print("user-pinned z sweep:     "
          f"{extended.objective / 1e6:.4f} s predicted "
          f"(pinned {len(allowed)} phases to dim-3)")

    # How the assistant filled in the rest:
    changed = [
        idx for idx in sorted(free.selection)
        if free.selection[idx] != extended.selection[idx]
        and idx not in allowed
    ]
    print(f"free phases the extension re-decided: {changed or 'none'}")

    # And what both cost on the simulated machine:
    for label, selection in (("unconstrained", free.selection),
                             ("extended", extended.selection)):
        layouts = {
            idx: result.layout_spaces.per_phase[idx][pos].layout
            for idx, pos in selection.items()
        }
        m = measure_layouts(source, layouts, nprocs=16)
        print(f"{label:>14}: measured {m.seconds:.4f} s "
              f"({m.remap_count} remaps)")


if __name__ == "__main__":
    main()
